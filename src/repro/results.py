"""Unified run results: the common outcome type of every algorithm.

Historically the paper solver returned ``SolveResult`` and the
baselines returned ``BaselineResult`` through a separate registry, so
the harness, CLI, and benchmarks each handled two shapes.
:class:`RunResult` is now the single common type: both legacy classes
are thin subclasses of it (their old import paths keep working), and
the :mod:`repro.api` entry points deal exclusively in ``RunResult``.

A result knows how to render itself as a JSON-safe dict and how to
compute a **result fingerprint** — the SHA-256 of its canonical JSON
form.  Fingerprints are the reproducibility contract of the batch
executor: the same :class:`repro.api.RunSpec` must produce the same
result fingerprint whether it ran serially, in a process pool, or in a
different session.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.graphs.edges import Edge, edge_to_token, token_to_edge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ledger import RoundLedger


def canonical_json(payload: Any) -> str:
    """Render ``payload`` as canonical (sorted, compact) JSON.

    Non-JSON values fall back to ``repr`` so fingerprinting is total.
    """
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
        default=repr,
    )


def fingerprint_of(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass
class RunResult:
    """Outcome of running any registered algorithm on one instance.

    Attributes
    ----------
    name:
        Algorithm name (registry key / table row label).
    coloring:
        Edge -> color (palette ``{1, ..., 2Δ-1}`` unless noted).
    rounds:
        LOCAL rounds under the library's accounting rules (sequential
        stages add, parallel stages take the max, primitives report
        simulated rounds).
    palette_size:
        Size of the palette the algorithm promises (``2Δ-1``).
    fingerprint:
        Fingerprint of the :class:`repro.api.RunSpec` that produced
        this result (empty for direct, spec-less invocations).
    policy_name:
        Parameter policy in force (paper solver only).
    initial_palette:
        ``X`` of the initial edge coloring the recursion consumed
        (paper solver only).
    stats:
        Structural statistics (ledger counters, Lemma 4.2 trajectory).
    details:
        Algorithm-specific observables (e.g. Luby's trial count).
    ledger:
        Full round-accounting tree when the algorithm keeps one.
    """

    name: str = ""
    coloring: dict[Edge, int] = field(default_factory=dict)
    rounds: int = 0
    palette_size: int = 0
    fingerprint: str = ""
    policy_name: str | None = None
    initial_palette: int | None = None
    stats: dict[str, object] = field(default_factory=dict)
    details: dict[str, object] = field(default_factory=dict)
    ledger: "RoundLedger | None" = field(default=None, repr=False)
    #: Ledger total carried by deserialized results (the tree itself is
    #: not persisted); keeps ``to_dict`` — and hence the result
    #: fingerprint — exact across a disk round-trip.
    _ledger_rounds: int | None = field(
        default=None, repr=False, compare=False
    )

    def colors_used(self) -> int:
        """Number of distinct colors actually used."""
        return len(set(self.coloring.values()))

    def to_dict(self, *, include_coloring: bool = True) -> dict[str, Any]:
        """Render as a JSON-safe dict (edges become ``"u--v"`` tokens).

        The ledger tree is summarised by its total (the full tree is
        available via :mod:`repro.analysis.serialization`).
        """
        payload: dict[str, Any] = {
            "name": self.name,
            "rounds": self.rounds,
            "palette_size": self.palette_size,
            "colors_used": self.colors_used(),
            "edges": len(self.coloring),
            "fingerprint": self.fingerprint,
            "policy_name": self.policy_name,
            "initial_palette": self.initial_palette,
            "stats": self.stats,
            "details": self.details,
            "ledger_rounds": (
                self.ledger.total_rounds()
                if self.ledger is not None
                else self._ledger_rounds
            ),
        }
        if include_coloring:
            payload["coloring"] = {
                edge_to_token(edge): color
                for edge, color in sorted(self.coloring.items(), key=repr)
            }
        return payload

    def is_failure(self) -> bool:
        """``True`` for captured per-spec failures (:class:`FailedResult`)."""
        return False

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from its :meth:`to_dict` form.

        The inverse used by the on-disk result cache
        (:mod:`repro.api.runner`).  Edge tokens are parsed back into
        canonical tuples (integer labels restored as integers); the
        ledger tree is not serialized by :meth:`to_dict` and therefore
        comes back as ``None`` — everything :meth:`result_fingerprint`
        covers round-trips exactly.

        Captured failure records (payloads carrying a ``"failure"``
        block, see :class:`FailedResult`) deserialize back into
        ``FailedResult``, so shard result files and dead-letter entries
        round-trip failures exactly like successes.
        """
        if "failure" in payload and cls is RunResult:
            return FailedResult.from_dict(payload)
        return cls(
            name=payload.get("name", ""),
            coloring={
                token_to_edge(token): color
                for token, color in payload.get("coloring", {}).items()
            },
            rounds=int(payload.get("rounds", 0)),
            palette_size=int(payload.get("palette_size", 0)),
            fingerprint=payload.get("fingerprint", ""),
            policy_name=payload.get("policy_name"),
            initial_palette=payload.get("initial_palette"),
            stats=dict(payload.get("stats", {})),
            details=dict(payload.get("details", {})),
            _ledger_rounds=payload.get("ledger_rounds"),
        )

    def result_fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form of this result.

        Two runs of the same spec — serial or parallel, this session or
        the next — must agree byte-for-byte on this value.
        """
        return fingerprint_of(self.to_dict())


@dataclass
class FailedResult(RunResult):
    """A captured per-spec failure: the executor's account of a poison spec.

    Produced by the batch executor under ``on_error="capture"``
    (:mod:`repro.api.runner`) when every attempt at a spec raised: the
    spec's slot in the batch holds this record instead of aborting the
    whole pool.  The serialized **failure record**
    (:meth:`to_dict` / :meth:`result_fingerprint`) is deterministic —
    serial and parallel executions of the same deterministic failure
    agree byte for byte, and re-running with the same fault seed
    reproduces it exactly.  Wall-clock and the full traceback text are
    observational: they live on the in-memory object (and in
    dead-letter files) but stay out of the canonical record.

    Attributes
    ----------
    error_type:
        Exception class name of the last attempt's failure.
    error_message:
        ``str()`` of that exception.
    traceback_digest:
        SHA-256 over the last attempt's formatted traceback (captured
        at the execution site, so it is identical whether the spec ran
        serially, in a pool worker, or in a cluster worker).
    attempts:
        How many attempts were made (1 + retries).
    wall_clock_s:
        Total wall-clock across all attempts (not serialized).
    traceback_text:
        The full formatted traceback of the last attempt (not
        serialized into the record; dead-letter files keep a copy for
        debugging).
    """

    error_type: str = ""
    error_message: str = ""
    traceback_digest: str = ""
    attempts: int = 1
    wall_clock_s: float | None = field(default=None, compare=False)
    traceback_text: str | None = field(
        default=None, repr=False, compare=False
    )

    def is_failure(self) -> bool:
        return True

    def to_dict(self, *, include_coloring: bool = True) -> dict[str, Any]:
        """The canonical failure record (deterministic, no wall-clock)."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "failure": {
                "error_type": self.error_type,
                "error_message": self.error_message,
                "traceback_digest": self.traceback_digest,
                "attempts": self.attempts,
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FailedResult":
        """Rebuild a failure record from its :meth:`to_dict` form."""
        failure = dict(payload.get("failure", {}))
        return cls(
            name=payload.get("name", ""),
            fingerprint=payload.get("fingerprint", ""),
            error_type=str(failure.get("error_type", "")),
            error_message=str(failure.get("error_message", "")),
            traceback_digest=str(failure.get("traceback_digest", "")),
            attempts=int(failure.get("attempts", 1)),
        )
