#!/usr/bin/env python3
"""Adversarial sweep: one algorithm, one instance, many worlds.

Runs the distributed greedy sweep under every adversarial execution
model (``repro.scenarios``) next to its synchronous baseline, and
prints the degradation table: rounds to quiescence, delivered vs
dropped/deferred/duplicated messages, crash counts, and whether the
surviving agents' coloring is still proper on the survivor-induced
subgraph.

Every row is an ordinary fingerprinted ``RunSpec`` — rerunning the
script replays cached results, and the adversary seed pins each
model's drop/crash/quota schedule exactly.

Usage::

    python examples/adversarial_sweep.py [size] [adversary_seed]
"""

import sys

from repro.analysis.harness import run_scenario_sweep
from repro.analysis.tables import format_table
from repro.api import InstanceSpec, RunSpec, ScenarioSpec, specs_for_scenarios


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    instance = InstanceSpec(family="complete_bipartite", size=size, seed=1)
    scenarios = [
        ScenarioSpec(model="bounded_async", seed=seed, params={"quota": 4}),
        ScenarioSpec(model="crash_stop", seed=seed, params={"f": 2}),
        ScenarioSpec(model="lossy_links", seed=seed, params={"drop": 0.2}),
        ScenarioSpec(
            model="lossy_links", seed=seed,
            params={"drop": 0.1, "duplicate": 0.3},
        ),
    ]
    specs = [
        # The synchronous baseline first: same algorithm, clean world.
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        *specs_for_scenarios(
            instance, scenarios, algorithm="greedy_sequential"
        ),
    ]
    print(f"instance: {instance.label()}  (adversary seed {seed})\n")

    sweep = run_scenario_sweep(specs)
    print(
        format_table(
            [
                "model", "rounds", "delivered", "dropped", "deferred",
                "duplicated", "crashed", "conflicts", "proper",
            ],
            [
                [
                    row.values["model"],
                    row.values["rounds"],
                    row.values["delivered"],
                    row.values["dropped"],
                    row.values["deferred"],
                    row.values["duplicated"],
                    row.values["crashed"],
                    row.values["conflicts"],
                    row.values["proper"],
                ]
                for row in sweep.rows
            ],
            title="greedy sweep under adversarial execution models",
        )
    )
    print()
    for spec, row in zip(specs, sweep.rows):
        print(f"  {row.values['fingerprint']}  {spec.label()}")


if __name__ == "__main__":
    main()
