#!/usr/bin/env python3
"""Data-center link scheduling via distributed edge coloring.

The classic systems motivation for edge coloring: a rack of servers
talks to a layer of switches; each link can carry one transfer per
time slot, and a server (or switch) can use only one of its links per
slot.  A proper edge coloring with colors = time slots is exactly a
conflict-free TDMA schedule, and 2Δ-1 slots always suffice.

Crucially, the schedule is computed *distributedly*: every switch and
server only talks to its direct neighbors, no central controller —
which is the whole point of the LOCAL-model algorithm.

The demo builds a leaf-spine-like bipartite fabric, colors it with the
paper's algorithm, and prints the per-slot matchings (each slot's
links are pairwise disjoint — verified).
"""

from collections import defaultdict

from repro import check_proper_edge_coloring, solve_edge_coloring
from repro.graphs.generators import random_bipartite_regular
from repro.graphs.properties import graph_summary


def build_fabric(servers_per_side: int = 12, uplinks: int = 4):
    """A random `uplinks`-regular bipartite fabric (servers x spines)."""
    return random_bipartite_regular(uplinks, servers_per_side, seed=7)


def main() -> None:
    fabric = build_fabric()
    summary = graph_summary(fabric)
    print(f"fabric: {summary.nodes} endpoints, {summary.edges} links, "
          f"Δ = {summary.max_degree} uplinks per endpoint")

    result = solve_edge_coloring(fabric, seed=3)
    check_proper_edge_coloring(fabric, result.coloring)

    slots: dict[int, list] = defaultdict(list)
    for link, slot in result.coloring.items():
        slots[slot].append(link)

    print(f"schedule uses {len(slots)} time slots "
          f"(greedy bound: {summary.greedy_palette_size}); "
          f"computed in {result.rounds} LOCAL rounds\n")

    for slot in sorted(slots):
        links = slots[slot]
        # Per-slot conflict check: no endpoint appears twice.
        endpoints = [node for link in links for node in link]
        assert len(endpoints) == len(set(endpoints)), "slot has a conflict!"
        print(f"slot {slot:2d}: {len(links):2d} parallel transfers "
              f"(a matching)")

    busiest = max(slots.values(), key=len)
    print(f"\npeak parallelism: {len(busiest)} simultaneous transfers")


if __name__ == "__main__":
    main()
