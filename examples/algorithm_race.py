#!/usr/bin/env python3
"""Race every algorithm on a Δ sweep, measured and predicted.

Reproduces the paper's positioning table (introduction): Linial's
O(Δ²), Szegedy-Vishwanathan/Kuhn-Wattenhofer O(Δ log Δ), Kuhn SODA'20
2^{O(√log Δ)}, the randomized O(log n), and this paper's
quasi-polylog-in-Δ — measured on identical instances at feasible
scale, plus the *predicted* curves and final crossovers in the
asymptotic regime simulation cannot reach.
"""

import math

from repro.analysis.harness import run_race_sweep
from repro.analysis.tables import format_series
from repro.analysis.theory import (
    crossover_log2_dbar,
    predicted_balliu_kuhn_olivetti,
    predicted_kuhn_soda20,
    predicted_kuhn_wattenhofer,
    predicted_linial_greedy,
)
from repro.graphs.generators import complete_bipartite


def main() -> None:
    sizes = [4, 8, 12, 16]
    graphs = [(2 * s - 2, complete_bipartite(s, s)) for s in sizes]
    print("measuring on K_{s,s} (uniform edge degree 2s-2) ...\n")
    sweep = run_race_sweep(
        graphs,
        algorithms=["linial_greedy", "kuhn_wattenhofer", "kuhn_soda20",
                    "randomized_luby"],
        seed=2,
    )
    series = {name: sweep.series(name) for name in sweep.series_names()}
    print(format_series("Δ̄", sweep.xs(), series,
                        title="measured LOCAL rounds"))

    print("\npredicted asymptotic crossovers (literal constants):")
    bko = predicted_balliu_kuhn_olivetti()
    for other, label in [
        (predicted_linial_greedy(), "Linial O(Δ̄²)"),
        (predicted_kuhn_wattenhofer(), "KW06 O(Δ̄ log Δ̄)"),
        (predicted_kuhn_soda20(), "Kuhn20 2^{O(√log Δ̄)}"),
    ]:
        x = crossover_log2_dbar(bko, other)
        if x is None:
            print(f"  vs {label}: no crossover in scanned range")
        else:
            print(f"  vs {label}: BKO20 wins for good at "
                  f"Δ̄ ≈ 2^{x:,.0f}")
    print("\n(the paper's improvement is asymptotic: with the paper's "
          "own per-level factor\n log^{8c+2} Δ̄ charged naively, the "
          "quasi-polylog curve undercuts 2^{O(√log Δ̄)}\n only at "
          "astronomically large Δ̄ — see EXPERIMENTS.md, experiment RACE)")


if __name__ == "__main__":
    main()
