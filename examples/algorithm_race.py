#!/usr/bin/env python3
"""Race every registered algorithm on a Δ sweep, measured and predicted.

Reproduces the paper's positioning table (introduction): Linial's
O(Δ²), Szegedy-Vishwanathan/Kuhn-Wattenhofer O(Δ log Δ), Kuhn SODA'20
2^{O(√log Δ)}, the randomized O(log n), and this paper's
quasi-polylog-in-Δ — measured on identical instances at feasible
scale, plus the *predicted* curves and final crossovers in the
asymptotic regime simulation cannot reach.

The entrant list is not hardcoded: it comes from the unified algorithm
registry (``repro.api``), so a newly registered baseline automatically
joins the race.  Each cell is a declarative ``RunSpec`` executed by the
batch executor — pass a second CLI argument > 1 to fan the sweep out
over that many processes.

Usage::

    python examples/algorithm_race.py [max_side] [parallel]
"""

import sys

from repro.api import InstanceSpec, algorithm_names, run_many, specs_for_race
from repro.analysis.tables import format_series
from repro.analysis.theory import (
    crossover_log2_dbar,
    predicted_balliu_kuhn_olivetti,
    predicted_kuhn_soda20,
    predicted_kuhn_wattenhofer,
    predicted_linial_greedy,
)


def main() -> None:
    max_side = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    parallel = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    sizes = [s for s in (4, 8, 12, 16) if s <= max_side] or [max_side]
    print(f"entrants (from the unified registry): {algorithm_names()}")
    print(f"measuring on K_{{s,s}} (uniform edge degree 2s-2), "
          f"parallel={parallel} ...\n")

    # One spec per (instance, algorithm) cell; the executor caches by
    # spec fingerprint and fans out over processes when asked to.
    specs = [
        spec
        for size in sizes
        for spec in specs_for_race(
            InstanceSpec(family="complete_bipartite", size=size, seed=2)
        )
    ]
    results = run_many(specs, parallel=parallel)

    per_algorithm: dict[str, list[int]] = {}
    for spec, result in zip(specs, results):
        per_algorithm.setdefault(result.name, []).append(result.rounds)
    xs = [2 * s - 2 for s in sizes]
    print(format_series("Δ̄", xs, per_algorithm,
                        title="measured LOCAL rounds"))

    print("\npredicted asymptotic crossovers (literal constants):")
    bko = predicted_balliu_kuhn_olivetti()
    for other, label in [
        (predicted_linial_greedy(), "Linial O(Δ̄²)"),
        (predicted_kuhn_wattenhofer(), "KW06 O(Δ̄ log Δ̄)"),
        (predicted_kuhn_soda20(), "Kuhn20 2^{O(√log Δ̄)}"),
    ]:
        x = crossover_log2_dbar(bko, other)
        if x is None:
            print(f"  vs {label}: no crossover in scanned range")
        else:
            print(f"  vs {label}: BKO20 wins for good at "
                  f"Δ̄ ≈ 2^{x:,.0f}")
    print("\n(the paper's improvement is asymptotic: with the paper's "
          "own per-level factor\n log^{8c+2} Δ̄ charged naively, the "
          "quasi-polylog curve undercuts 2^{O(√log Δ̄)}\n only at "
          "astronomically large Δ̄ — see EXPERIMENTS.md, experiment RACE)")


if __name__ == "__main__":
    main()
