#!/usr/bin/env python3
"""Drive the LOCAL-model simulator directly.

Shows the substrate the whole library runs on: a synchronous
message-passing network with unique IDs and port numbering.  Two
genuine distributed programs run here:

1. FloodMax — information travels exactly one hop per round (the
   defining property of the synchronous LOCAL model);
2. Linial's color reduction on the LINE GRAPH — each *edge* acts as an
   agent and computes an O(Δ̄²)-edge coloring in O(log* n) rounds,
   exchanging real messages.
"""

import networkx as nx

from repro.coloring.verify import check_proper_edge_coloring
from repro.model import Scheduler, line_graph_network
from repro.model.network import Network
from repro.model.scheduler import run_on_graph
from repro.primitives.node_algorithms import (
    FloodMaxAlgorithm,
    LinialColorReductionAlgorithm,
)


def flood_demo() -> None:
    print("== FloodMax on a 12-node path ==")
    path = nx.path_graph(12)
    for horizon in (3, 11):
        result = run_on_graph(FloodMaxAlgorithm(horizon), path)
        informed = sum(1 for v in result.outputs.values() if v == 12)
        print(f"  horizon {horizon:2d}: rounds={result.rounds:2d}, "
              f"messages={result.messages_sent:4d}, "
              f"nodes knowing the max ID: {informed}/12")


def linial_demo() -> None:
    print("\n== Linial color reduction on the line graph of K_{5,5} ==")
    graph = nx.complete_bipartite_graph(5, 5)
    # Adversarially scattered node IDs (the LOCAL model's worst case):
    # with sorted tiny IDs the initial palette is already at the
    # O(Δ̄²) fixpoint and the reduction has nothing to do.
    from repro.graphs.properties import assign_unique_ids

    node_ids = assign_unique_ids(graph, seed=11, id_space_exponent=4)
    network = line_graph_network(graph, node_ids=node_ids)
    print(f"  line-graph network: {network.n} edge-agents, "
          f"max degree {network.max_degree}, ID space up to "
          f"{network.max_id()}")
    scheduler = Scheduler(network, record_trace=True)
    result = scheduler.run(
        LinialColorReductionAlgorithm(id_space=network.max_id())
    )
    coloring = dict(result.outputs)
    check_proper_edge_coloring(graph, coloring)
    print(f"  proper edge coloring with {len(set(coloring.values()))} "
          f"colors in {result.rounds} rounds "
          f"({result.messages_sent} messages, "
          f"largest payload ~{result.max_message_size} bytes)")
    first = result.trace[0]
    print(f"  first message: edge-agent {first.sender} -> "
          f"{first.receiver} carrying its current color")


def main() -> None:
    flood_demo()
    linial_demo()


if __name__ == "__main__":
    main()
