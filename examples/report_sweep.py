#!/usr/bin/env python3
"""Report-driven sweep: run a sharded batch, then read its ledger.

The observability loop end to end (``repro.telemetry``): a mixed
adversarial batch is executed through the cluster layer — whose
workers default the run ledger **on** at ``<job>/ledger/`` — with span
tracing switched on for the drain, then replayed against the job's
cache to show cache accounting, and finally rolled up with the same
machinery behind ``python -m repro report``: per-algorithm /
per-scenario latency percentiles, cache-hit and retry rates,
per-worker throughput, span aggregates, and the dead-letter summary —
plus the span **flame rollup** behind ``repro report --flame``
(self/total time by call path, critical path) and one frame of the
``repro top`` dashboard rendered from the job's live event stream.

The ledger is strictly observational: every record lives outside the
sealed result files, so rerunning this script replays cached results
byte-for-byte while the ledger honestly reports ``cache_disk`` rows
instead of fresh executions.

Usage::

    python examples/report_sweep.py [job_dir] [size] [adversary_seed]

With no ``job_dir`` a temporary directory is used (fresh job each
run).  With a persistent one, rerun the script and watch the cache-hit
rate climb in the report.
"""

import sys
import tempfile

from repro.api import InstanceSpec, RunSpec, ScenarioSpec, run_many
from repro.cluster import run_sharded
from repro.cluster.worker import ledger_dir_of
from repro.telemetry import (
    flame_rollup,
    format_flame,
    format_report,
    rollup,
    run_top,
    trace_context,
)


def build_specs(size: int, seed: int) -> list[RunSpec]:
    instance = InstanceSpec(family="complete_bipartite", size=size, seed=1)
    scenarios = [
        ScenarioSpec(model="crash_stop", seed=seed, params={"f": 2}),
        ScenarioSpec(model="lossy_links", seed=seed, params={"drop": 0.2}),
    ]
    specs = [RunSpec(instance=instance, algorithm="bko20")]
    for algorithm in ("greedy_sequential", "randomized_luby"):
        specs.append(RunSpec(instance=instance, algorithm=algorithm))
        specs.extend(
            RunSpec(instance=instance, algorithm=algorithm, scenario=scenario)
            for scenario in scenarios
        )
    return specs


def main() -> None:
    job_dir = sys.argv[1] if len(sys.argv) > 1 else None
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 7

    specs = build_specs(size, seed)
    scratch = None
    if job_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-report-sweep-")
        job_dir = scratch.name
    try:
        # 1. The sharded run: workers ledger to <job>/ledger/ on their
        #    own — no ledger opt-in anywhere in this call.  Span
        #    tracing *is* an opt-in (it costs a write per span); the
        #    process-global seam here is what worker fleets inherit
        #    through REPRO_TRACE_DIR, and it drops shard.claim /
        #    shard.drain / run.attempt / cache.publish spans into the
        #    same ledger directory.
        print(f"{len(specs)} specs -> 2 shards at {job_dir}\n")
        with trace_context(ledger_dir_of(job_dir)):
            run_sharded(specs, job_dir, shards=2, local_workers=0)

        # 2. A replay against the job's cache, ledgered to the same
        #    directory: every spec comes back as a cache row, so the
        #    report's cache-hit rate rises while the results stay
        #    byte-identical to the first pass.
        run_many(
            specs,
            cache_dir=f"{job_dir}/cache",
            ledger_dir=ledger_dir_of(job_dir),
        )

        # 3. The rollup — exactly what `python -m repro report
        #    <job_dir>` prints.
        print(format_report(rollup(job_dir)))

        # 4. The flame pass — `repro report <job_dir> --flame`: the
        #    drain's spans reassembled into parent→child call paths
        #    with self/total time and the critical path.  Totals per
        #    leaf name reconcile exactly with the flat span table
        #    above.
        print()
        print(format_flame(flame_rollup(job_dir)))

        # 5. One frame of the live dashboard — while a job runs,
        #    `python -m repro top <job_dir>` refreshes this view every
        #    few seconds (per-shard state, per-worker throughput,
        #    retry/cache/dead-letter counters, recent events, ETA);
        #    against a service, point it at the job URL instead:
        #    `python -m repro top http://host:port/v1/jobs/<id>`.
        print()
        run_top(job_dir, once=True)
    finally:
        if scratch is not None:
            scratch.cleanup()


if __name__ == "__main__":
    main()
