#!/usr/bin/env python3
"""Wireless frequency assignment via (deg(e)+1)-LIST edge coloring.

The list variant is what makes the paper's algorithm practical for
spectrum problems: each radio link has its *own* menu of usable
channels (regulatory constraints, hardware bands, measured
interference), and links sharing a node must use different channels.

The paper's Theorem 4.1 guarantees a valid assignment whenever every
link's menu holds at least deg(e)+1 channels — and this demo builds
exactly such menus: each link of a mesh network gets a random menu of
size deg(e)+1 from a channel pool, i.e. *the minimum that is always
feasible*.  A greedy centralized pass can fail on adversarial menus;
the list coloring algorithm cannot.
"""

import random

from repro import check_list_edge_coloring, solve_list_edge_coloring
from repro.coloring.lists import deg_plus_one_lists
from repro.coloring.palette import Palette
from repro.graphs.generators import random_regular
from repro.graphs.line_graph import edge_degree
from repro.graphs.properties import graph_summary


def main() -> None:
    mesh = random_regular(5, 24, seed=21)
    summary = graph_summary(mesh)
    pool = Palette.of_size(2 * summary.max_degree + 6)  # channel pool
    print(f"mesh: {summary.nodes} radios, {summary.edges} links, "
          f"Δ = {summary.max_degree}; channel pool: {len(pool)}")

    # Each link gets a random menu of exactly deg(e)+1 channels — the
    # tightest always-feasible regime of the paper.
    menus = deg_plus_one_lists(mesh, palette=pool, seed=5)
    sizes = sorted(len(menus.list_of(e)) for e in menus.lists)
    print(f"menu sizes: min {sizes[0]}, max {sizes[-1]} "
          f"(= deg(e)+1 per link)")

    result = solve_list_edge_coloring(mesh, menus, seed=9)
    check_list_edge_coloring(mesh, menus, result.coloring)

    print(f"assigned channels to all {summary.edges} links in "
          f"{result.rounds} LOCAL rounds")

    # Show a few assignments with their menus.
    rng = random.Random(0)
    sample = rng.sample(sorted(result.coloring), 5)
    for link in sample:
        menu = sorted(menus.list_of(link))
        chosen = result.coloring[link]
        print(f"  link {link}: deg(e)={edge_degree(mesh, link)}, "
              f"menu {menu} -> channel {chosen}")

    channels_used = len(set(result.coloring.values()))
    print(f"distinct channels in use: {channels_used} of {len(pool)}")


if __name__ == "__main__":
    main()
