#!/usr/bin/env python3
"""Talk to the repro service with nothing but the standard library.

The service's whole point is that clients need zero dependencies:
every exchange below is plain ``urllib`` + ``json``.  The script
demonstrates the full client lifecycle —

1. ``POST /v1/run`` the same spec twice: the first response is
   ``"executed"``, the repeat is a ``"cache"`` replay with a
   byte-identical result (the fingerprint in ``X-Repro-Fingerprint``
   is the idempotency key).
2. ``POST /v1/jobs`` a mixed batch (duplicate spec included) as a
   sharded job, then ``GET /v1/jobs/<id>`` to poll progress, and
   ``GET /v1/jobs/<id>/stream`` to read the NDJSON stream — one
   ``{"index": i, "result": ...}`` line per spec, in batch order, as
   shards seal.
3. Resubmit the identical batch: same job id back, nothing re-runs.

Point it at a running server, or let it start a private in-process one
(the default — no setup needed)::

    python examples/service_client.py                    # in-process
    python -m repro serve --port 8000 &                  # or external:
    python examples/service_client.py http://127.0.0.1:8000

Run it twice against a persistent server and every single run comes
back ``"cache"``.
"""

import json
import sys
import tempfile
import threading
import time
import urllib.request


def request(method: str, url: str, payload=None):
    """One JSON round-trip; returns ``(status, body, headers)``."""
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=120) as response:
        return response.status, json.loads(response.read()), response.headers


def main() -> None:
    if len(sys.argv) > 1:
        base = sys.argv[1].rstrip("/")
        cleanup = None
    else:
        # No server given: start a private one on an ephemeral port.
        from repro.service import ReproService, make_server

        data_dir = tempfile.mkdtemp(prefix="repro-service-demo-")
        server = make_server(ReproService(data_dir))
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        threading.Thread(target=server.serve_forever, daemon=True).start()
        cleanup = server.shutdown
        print(f"started in-process service at {base} (data in {data_dir})")

    try:
        # -- single runs: fingerprint = idempotency key ----------------
        spec = {
            "instance": {"family": "complete_bipartite", "size": 3, "seed": 2},
            "algorithm": "bko20",
        }
        status, body, headers = request("POST", base + "/v1/run", spec)
        print(
            f"\nPOST /v1/run -> {status} source={body['source']} "
            f"colors={body['result']['colors_used']} "
            f"[{headers['X-Repro-Fingerprint'][:12]}]"
        )
        status, body, _ = request("POST", base + "/v1/run", spec)
        print(f"POST /v1/run (repeat) -> {status} source={body['source']}")

        # -- a sharded streaming job -----------------------------------
        batch = [
            spec,
            {**spec, "algorithm": "greedy_sequential"},
            {
                **spec,
                "algorithm": "greedy_sequential",
                "scenario": {
                    "model": "crash_stop", "seed": 5, "params": {"f": 2}
                },
            },
            spec,  # duplicate: one solve fans out to both slots
        ]
        status, job, _ = request(
            "POST",
            base + "/v1/jobs",
            {"specs": batch, "shards": "auto", "local_workers": 1},
        )
        print(
            f"\nPOST /v1/jobs -> {status} job={job['job'][:12]} "
            f"created={job['created']} shards={job['shards']}"
        )

        # Poll progress while the stream below fills (jobs run in the
        # background; status is cheap and always answers).
        status, snap, _ = request("GET", base + job["status_url"])
        print(
            f"GET {job['status_url'][:22]}… -> state={snap['state']} "
            f"done={snap['done']}/{snap['total']}"
        )

        # Stream: one NDJSON line per spec, batch order, exactly once.
        print(f"GET {job['stream_url'][:22]}…/stream:")
        with urllib.request.urlopen(
            base + job["stream_url"], timeout=300
        ) as stream:
            for raw in stream:
                if not raw.strip():
                    continue
                line = json.loads(raw)
                result = line["result"]
                failed = "FAILED " if "failure" in result else ""
                print(
                    f"  index {line['index']}: {failed}{result['name']} "
                    f"[{result['fingerprint'][:12]}]"
                )

        # Terminal state (give the driver a beat to reap its worker).
        deadline = time.time() + 30
        while time.time() < deadline:
            status, snap, _ = request("GET", base + job["status_url"])
            if snap["state"] != "running":
                break
            time.sleep(0.05)
        print(f"final state: {snap['state']} ({snap['done']}/{snap['total']})")

        # -- idempotent resubmission ------------------------------------
        status, again, _ = request(
            "POST",
            base + "/v1/jobs",
            {"specs": batch, "shards": "auto", "local_workers": 1},
        )
        print(
            f"\nresubmit -> {status} same job: "
            f"{again['job'] == job['job']}, created={again['created']}"
        )
    finally:
        if cleanup is not None:
            cleanup()


if __name__ == "__main__":
    main()
