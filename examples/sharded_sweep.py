#!/usr/bin/env python3
"""Sharded sweep: an adversarial grid drained by two local workers.

Builds a mixed batch — three algorithms under crash faults, message
loss, and bounded asynchrony, next to their synchronous baselines —
and executes it through the cluster layer (``repro.cluster``): the
batch is planned into a shared job directory, two ``python -m repro
worker`` subprocesses claim and drain the shards (leases, heartbeats,
sealed result files), and the coordinator merges the shard outputs
into the exact ordered list serial ``run_many`` would return.

Everything is resumable: kill the script mid-run and start it again
with the same job directory — finished shards are reused, crashed
workers' leases go stale and their shards are reclaimed, and per-spec
results already spilled to the job cache replay instead of re-solving.

Usage::

    python examples/sharded_sweep.py [job_dir] [size] [adversary_seed]

With no ``job_dir`` a temporary directory is used (fresh job each run).
"""

import sys
import tempfile

from repro.analysis.harness import run_scenario_sweep
from repro.analysis.tables import format_table
from repro.api import InstanceSpec, RunSpec, ScenarioSpec
from repro.cluster import job_status


def build_specs(size: int, seed: int) -> list[RunSpec]:
    instance = InstanceSpec(family="complete_bipartite", size=size, seed=1)
    scenarios = [
        ScenarioSpec(model="bounded_async", seed=seed, params={"quota": 4}),
        ScenarioSpec(model="crash_stop", seed=seed, params={"f": 2}),
        ScenarioSpec(model="lossy_links", seed=seed, params={"drop": 0.2}),
    ]
    specs = []
    for algorithm in ("greedy_sequential", "randomized_luby"):
        specs.append(RunSpec(instance=instance, algorithm=algorithm))
        specs.extend(
            RunSpec(instance=instance, algorithm=algorithm, scenario=scenario)
            for scenario in scenarios
        )
    return specs


def main() -> None:
    job_dir = sys.argv[1] if len(sys.argv) > 1 else None
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 7

    specs = build_specs(size, seed)
    scratch = None
    if job_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-sharded-sweep-")
        job_dir = scratch.name
    try:
        print(
            f"{len(specs)} specs -> 4 shards at {job_dir}, "
            "2 local worker subprocesses\n"
        )
        sweep = run_scenario_sweep(
            specs, job_dir=job_dir, shards=4, local_workers=2
        )
        status = job_status(job_dir)
        print(
            format_table(
                [
                    "algorithm", "model", "rounds", "delivered", "dropped",
                    "crashed", "conflicts", "proper",
                ],
                [
                    [
                        row.values["algorithm"],
                        row.values["model"],
                        row.values["rounds"],
                        row.values["delivered"],
                        row.values["dropped"],
                        row.values["crashed"],
                        row.values["conflicts"],
                        row.values["proper"],
                    ]
                    for row in sweep.rows
                ],
                title=(
                    "sharded adversarial sweep "
                    f"[plan {status['plan_fingerprint'][:12]}, "
                    f"{status['shards']} shards done]"
                ),
            )
        )
    finally:
        if scratch is not None:
            scratch.cleanup()


if __name__ == "__main__":
    main()
