#!/usr/bin/env python3
"""Edge coloring as a special case of vertex coloring.

The paper's framing sentence: "the (2Δ−1)-edge coloring problem is a
special case of the (Δ+1)-vertex coloring problem" — color the
*line graph* with Δ(L(G)) + 1 ≤ 2Δ − 1 colors.

This demo runs both routes on the same graph and compares:

1. the direct route — the paper's recursive edge coloring algorithm;
2. the reduction route — the [SV93/KW06] (Δ+1)-vertex coloring
   algorithm applied to the line graph.

Both produce valid (2Δ−1)-edge colorings; the paper's contribution is
that route 1 breaks the Δ̄-linear barrier route 2 is stuck at.
"""

from repro import check_palette_bound, check_proper_edge_coloring, solve_edge_coloring
from repro.graphs.generators import random_regular
from repro.graphs.properties import graph_summary
from repro.vertexcoloring import (
    edge_coloring_via_vertex_coloring,
    kw_vertex_coloring,
)
from repro.graphs.line_graph import line_graph


def main() -> None:
    graph = random_regular(8, 30, seed=4)
    summary = graph_summary(graph)
    print(f"instance: {summary.nodes} nodes, {summary.edges} edges, "
          f"Δ = {summary.max_degree}, Δ̄ = {summary.max_edge_degree}")
    bound = summary.greedy_palette_size
    print(f"palette bound 2Δ-1 = {bound}\n")

    direct = solve_edge_coloring(graph, seed=2)
    check_proper_edge_coloring(graph, direct.coloring)
    check_palette_bound(direct.coloring, bound)
    print("route 1 — the paper's algorithm on G:")
    print(f"  {len(set(direct.coloring.values()))} colors, "
          f"{direct.rounds} LOCAL rounds")

    lg = line_graph(graph)
    vertex_run = kw_vertex_coloring(lg, seed=2)
    reduction = edge_coloring_via_vertex_coloring(graph, seed=2)
    print("route 2 — (Δ+1)-vertex coloring of the line graph "
          f"(|V(L)| = {lg.number_of_nodes()}, Δ(L) = "
          f"{max(d for _n, d in lg.degree())}):")
    print(f"  {len(set(reduction.values()))} colors, "
          f"{vertex_run.rounds} LOCAL rounds")

    print("\nboth validated against the same checker; the paper's point "
          "is the asymptotic gap\nbetween quasi-polylog(Δ̄) (route 1) and "
          "the Δ̄-linear family (route 2).")


if __name__ == "__main__":
    main()
