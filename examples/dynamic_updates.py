#!/usr/bin/env python3
"""Incremental recoloring after topology changes.

The paper motivates LIST edge coloring as the tool that "allows to
extend an initial partial coloring of a graph to a full coloring".
This demo shows the payoff for dynamic networks: when links are added,
only the NEW links run the coloring algorithm — every existing link
keeps its color, and the recoloring cost scales with the change, not
with the network.
"""

from repro.core.dynamic import insert_edges
from repro.core.solver import solve_edge_coloring
from repro.coloring.verify import check_proper_edge_coloring
from repro.graphs.generators import random_regular
from repro.graphs.properties import graph_summary


def main() -> None:
    network = random_regular(5, 24, seed=17)
    summary = graph_summary(network)
    print(f"initial network: {summary.nodes} nodes, {summary.edges} links")

    base = solve_edge_coloring(network, seed=1)
    print(f"initial coloring: {len(set(base.coloring.values()))} colors, "
          f"{base.rounds} LOCAL rounds\n")

    # Operator adds three new links.
    nodes = sorted(network.nodes())
    new_links = []
    for u in nodes:
        for v in nodes:
            if u < v and not network.has_edge(u, v) and len(new_links) < 3:
                if all(u not in link and v not in link for link in new_links):
                    new_links.append((u, v))
    print(f"adding links: {new_links}")

    updated, extension = insert_edges(network, base.coloring, new_links, seed=2)
    check_proper_edge_coloring(updated, extension.coloring)

    unchanged = sum(
        1 for e, c in base.coloring.items() if extension.coloring[e] == c
    )
    print(f"extension touched only the new links: "
          f"{unchanged}/{len(base.coloring)} old colors unchanged")
    for link in new_links:
        key = (min(link), max(link))
        print(f"  new link {key} -> color {extension.coloring[key]}")
    print(f"incremental cost: {extension.rounds} LOCAL rounds "
          f"(vs {base.rounds} for the full solve)")
    assert extension.rounds < base.rounds


if __name__ == "__main__":
    main()
