#!/usr/bin/env python3
"""Quickstart: color the edges of a graph with 2Δ-1 colors.

Describes the experiment as a declarative, serializable spec and runs
it through ``repro.api`` — the library's canonical entry point.  The
executor validates the coloring independently, stamps the result with
the spec's fingerprint, and (for the paper's algorithm) returns the
full LOCAL-round accounting per lemma.

Usage::

    python examples/quickstart.py [degree] [seed]
"""

import sys

from repro.api import InstanceSpec, RunSpec, run


def main() -> None:
    degree = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    # The whole experiment in one serializable object: the
    # 'random_regular' family builds a degree-regular graph on ~4*degree
    # nodes (adjusted to a feasible order by the family registry).
    spec = RunSpec(
        instance=InstanceSpec(family="random_regular", size=degree, seed=seed),
        algorithm="bko20",
        policy="scaled",
    )
    print(f"spec: {spec.to_json()}")
    print(f"spec fingerprint: {spec.fingerprint()}\n")

    # run() builds the instance, executes the algorithm, and validates
    # the coloring independently (properness + palette bound).
    result = run(spec)

    print(f"colored {len(result.coloring)} edges with "
          f"{result.colors_used()} colors "
          f"(palette bound 2Δ-1 = {result.palette_size})")
    print(f"LOCAL rounds: {result.rounds} "
          f"(initial X-coloring palette: {result.initial_palette})")
    print(f"policy: {result.policy_name}")
    print()
    print("round breakdown (top levels):")
    print(result.ledger.breakdown(max_depth=2))


if __name__ == "__main__":
    main()
