#!/usr/bin/env python3
"""Quickstart: color the edges of a graph with 2Δ-1 colors.

Runs the paper's algorithm (Balliu-Kuhn-Olivetti, PODC 2020) on a
random regular graph, validates the result independently, and prints
the LOCAL-round accounting per lemma.

Usage::

    python examples/quickstart.py [degree] [nodes]
"""

import sys

from repro import (
    check_palette_bound,
    check_proper_edge_coloring,
    solve_edge_coloring,
)
from repro.graphs.generators import random_regular
from repro.graphs.properties import graph_summary


def main() -> None:
    degree = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    if (degree * nodes) % 2:
        nodes += 1

    graph = random_regular(degree, nodes, seed=1)
    summary = graph_summary(graph)
    print(f"instance: {nodes} nodes, {summary.edges} edges, "
          f"Δ = {summary.max_degree}, Δ̄ = {summary.max_edge_degree}")

    result = solve_edge_coloring(graph, seed=2)

    # Never trust an algorithm — validate independently.
    check_proper_edge_coloring(graph, result.coloring)
    check_palette_bound(result.coloring, summary.greedy_palette_size)

    used = len(set(result.coloring.values()))
    print(f"colored {summary.edges} edges with {used} colors "
          f"(palette bound 2Δ-1 = {summary.greedy_palette_size})")
    print(f"LOCAL rounds: {result.rounds} "
          f"(initial X-coloring palette: {result.initial_palette})")
    print(f"policy: {result.policy_name}")
    print()
    print("round breakdown (top levels):")
    print(result.ledger.breakdown(max_depth=2))


if __name__ == "__main__":
    main()
