"""PRIM — round costs of the primitive subroutines.

Paper claims checked:
1. Cole-Vishkin chain coloring: O(log* X) rounds — doubling the ID
   magnitude repeatedly adds O(1) rounds;
2. Linial reduction: O(log* n) rounds to an O(Δ̄²) palette;
3. Kuhn-Wattenhofer: O(Δ̄ log(m/Δ̄)) — exponentially fewer rounds than
   the trivial one-color-per-round reduction;
4. the message-passing Linial (real simulator messages) matches the
   functional form's round count.
"""

from repro.analysis.tables import format_table
from repro.graphs.generators import random_regular
from repro.graphs.properties import assign_unique_ids
from repro.model.network import Network
from repro.model.scheduler import Scheduler
from repro.primitives.chain_coloring import three_color_chain
from repro.primitives.color_reduction import (
    kuhn_wattenhofer_reduction,
    one_color_per_round_reduction,
)
from repro.primitives.linial import linial_reduce
from repro.primitives.node_algorithms import LinialColorReductionAlgorithm
from repro.utils.chains import Chain
from repro.utils.logstar import log_star

from conftest import report


def test_prim_cole_vishkin_logstar(benchmark):
    rows = []
    length = 512
    chain = Chain(tuple(range(length)), cyclic=True)
    for magnitude in (10**3, 10**6, 10**12, 10**18):
        ids = {i: magnitude + i * 7919 for i in range(length)}
        result = three_color_chain(chain, ids)
        assert set(result.colors.values()) <= {0, 1, 2}
        rows.append([f"1e{len(str(magnitude)) - 1}",
                     log_star(magnitude), result.rounds])
    # ID magnitude grew by 15 orders; rounds moved by at most log* + 2
    measured = [row[2] for row in rows]
    assert max(measured) - min(measured) <= 4
    report(format_table(
        ["ID magnitude X", "log* X", "CV rounds"],
        rows,
        title="PRIM: Cole-Vishkin rounds vs ID magnitude (log* growth)",
    ))
    ids = {i: 10**9 + i * 7919 for i in range(length)}
    benchmark(lambda: three_color_chain(chain, ids))


def test_prim_linial_functional_vs_simulated(benchmark):
    graph = random_regular(4, 20, seed=3)
    network = Network(graph, ids=assign_unique_ids(graph, seed=9))
    adjacency = {node: sorted(graph.neighbors(node)) for node in graph.nodes()}
    functional = linial_reduce(adjacency, network.ids())
    simulated = Scheduler(network).run(
        LinialColorReductionAlgorithm(id_space=network.max_id())
    )
    assert abs(simulated.rounds - functional.rounds) <= 1
    report(format_table(
        ["form", "rounds", "palette"],
        [
            ["functional", functional.rounds, functional.palette_size],
            ["message-passing", simulated.rounds,
             max(simulated.outputs.values()) + 1],
        ],
        title="PRIM: Linial reduction — functional vs simulated",
    ))
    benchmark(lambda: linial_reduce(adjacency, network.ids()))


def test_prim_kw_vs_trivial_reduction(benchmark):
    graph = random_regular(4, 24, seed=6)
    adjacency = {node: sorted(graph.neighbors(node)) for node in graph.nodes()}
    colors = {
        node: value * 500 for node, value in assign_unique_ids(graph).items()
    }
    kw = kuhn_wattenhofer_reduction(adjacency, colors)
    trivial = one_color_per_round_reduction(adjacency, colors)
    # both reach the d+1 = 5 target (KW may use even fewer if a color
    # class ends up empty)
    assert kw.palette_size <= 5 and trivial.palette_size <= 5
    assert kw.rounds * 10 < trivial.rounds
    report(format_table(
        ["reduction", "rounds", "final palette"],
        [
            ["Kuhn-Wattenhofer O(Δ̄ log m)", kw.rounds, kw.palette_size],
            ["one-color-per-round O(m)", trivial.rounds, trivial.palette_size],
        ],
        title="PRIM: palette reduction — parallel halving vs trivial",
    ))
    benchmark(lambda: kuhn_wattenhofer_reduction(adjacency, colors))
