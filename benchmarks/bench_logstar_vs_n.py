"""LOGSTAR — the additive O(log* n) term.

Paper claim: at fixed Δ, the only n-dependence of the whole algorithm
is the additive ``O(log* n)`` from the initial coloring (Linial's
lower bound says some such term is necessary).

Measured: rounds of the full solver and of the initial coloring alone
on cycles and tori of growing n — the curves must be essentially flat
(log* is constant for every feasible n).
"""

from repro.analysis.tables import format_table
from repro.coloring.verify import check_proper_edge_coloring
from repro.core.solver import compute_initial_edge_coloring, solve_edge_coloring
from repro.graphs.generators import cycle_graph, torus_graph
from repro.utils.logstar import log_star

from conftest import report


def test_logstar_cycles(benchmark):
    rows = []
    rounds_seen = []
    for n in (16, 64, 256, 1024):
        graph = cycle_graph(n)
        result = solve_edge_coloring(graph, seed=1)
        check_proper_edge_coloring(graph, result.coloring)
        _c, _p, initial_rounds = compute_initial_edge_coloring(graph, seed=1)
        rows.append([n, log_star(n**4), initial_rounds, result.rounds])
        rounds_seen.append(result.rounds)
    # flat in n: growing n by 64x moves total rounds by a few at most
    assert max(rounds_seen) - min(rounds_seen) <= 8
    report(format_table(
        ["n", "log*(ID space)", "initial-coloring rounds", "total rounds"],
        rows,
        title="LOGSTAR: cycles — rounds are flat in n at fixed Δ=2",
    ))
    benchmark(lambda: solve_edge_coloring(cycle_graph(256), seed=1))


def test_logstar_tori(benchmark):
    rows = []
    rounds_seen = []
    for side in (4, 8, 16):
        graph = torus_graph(side, side)
        result = solve_edge_coloring(graph, seed=1)
        check_proper_edge_coloring(graph, result.coloring)
        rows.append([side * side, result.rounds])
        rounds_seen.append(result.rounds)
    # n grows 16x; rounds must stay within a small constant factor
    # (log* is constant over this range) — vs 16x for any linear term.
    assert max(rounds_seen) <= 2 * min(rounds_seen)
    report(format_table(
        ["n", "total rounds"],
        rows,
        title="LOGSTAR: 4-regular tori — rounds flat in n",
    ))
    benchmark.pedantic(
        lambda: solve_edge_coloring(torus_graph(8, 8), seed=1),
        rounds=3, iterations=1,
    )
