"""ABL-BETA — ablation of the slack parameter β.

The paper sets β = α log^{4c} Δ̄ (large polylog).  This ablation runs
constant and logarithmic β policies on one instance and reports how β
trades defective-coloring class count (O(β²) classes, each a lockstep
round) against per-class degree (deg/2β, driving recursion depth).

Checked: every β yields a valid coloring; the O(β²) class-count charge
grows quadratically in β, so oversized β wastes rounds at feasible
scale — the reason the scaled default uses β = log Δ̄.
"""

import pytest

from repro.analysis.harness import run_policy_sweep
from repro.analysis.tables import format_table
from repro.core.params import fixed_policy, paper_policy, scaled_policy
from repro.graphs.generators import complete_bipartite

from conftest import report


@pytest.mark.slow
def test_ablation_beta(benchmark):
    graph = complete_bipartite(18, 18)
    policies = [
        fixed_policy(2, 4, base_degree_threshold=4, base_palette_threshold=6),
        fixed_policy(3, 4, base_degree_threshold=4, base_palette_threshold=6),
        fixed_policy(5, 4, base_degree_threshold=4, base_palette_threshold=6),
        scaled_policy(),
        paper_policy(),
    ]
    sweep = run_policy_sweep(graph, policies, seed=2)
    rows = [
        [row.x, row.values["rounds"], row.values["relaxed invocations"],
         row.values["lem43 reductions"], row.values["max depth"],
         row.values["deferred"]]
        for row in sweep.rows
    ]
    report(format_table(
        ["policy", "rounds", "slack-β instances", "Lem4.3 reductions",
         "max depth", "deferred"],
        rows,
        title="ABL-BETA: β ablation on K_18,18 "
              "(paper's literal β degenerates to the base case)",
    ))

    by_name = {row.x: row.values for row in sweep.rows}
    # the paper's literal constants must degenerate (documented fact)
    paper_row = by_name["paper(c=1,alpha=1)"]
    assert paper_row["lem43 reductions"] == 0

    # larger constant β costs more lockstep rounds (O(β²) classes)
    assert (
        by_name["fixed(beta=5,p=4)"]["rounds"]
        > by_name["fixed(beta=2,p=4)"]["rounds"]
    )

    benchmark.pedantic(
        lambda: run_policy_sweep(graph, [policies[0]], seed=2),
        rounds=2, iterations=1,
    )
