"""FIG5 — Figure 5 of the paper: list partitioning under Lemma 4.4.

Paper artifact: the worked example with ``C = 20``, ``p = 4`` and the
list ``L_e = {1, 2, 5, 6, 7, 12, 17}`` of size 7, whose index set is
``I = {1, 2}`` because the two largest intersections (3 and 2) both
meet the bound ``|L_e| / (2 H_4) ≈ 1.68``.

This benchmark reproduces the exact instance, then validates Lemma 4.4
on thousands of random lists, and times the level computation (a hot
inner loop of the color-space reduction).
"""

import random

from repro.analysis.tables import format_table
from repro.coloring.palette import Palette, split_palette
from repro.core.levels import compute_level, lemma_44_index_set
from repro.utils.harmonic import harmonic_number

from conftest import report


FIGURE5_LIST = frozenset({1, 2, 5, 6, 7, 12, 17})


def test_fig5_exact_instance(benchmark):
    subspaces = split_palette(Palette.of_size(20), 4)
    sizes = [len(FIGURE5_LIST & s.as_set) for s in subspaces]
    assert sizes == [3, 2, 1, 1]

    k, indices = lemma_44_index_set(sizes)
    assert k == 2 and sorted(indices) == [0, 1]  # paper's I = {1, 2}

    threshold = len(FIGURE5_LIST) / (k * harmonic_number(4))
    rows = [
        [f"C_{i+1}", sizes[i], f"{'in I' if i in indices else '-'}",
         f">= {threshold:.2f}" if i in indices else ""]
        for i in range(4)
    ]
    report(format_table(
        ["subspace", "|L ∩ C_i|", "selected", "Lemma 4.4 bound"],
        rows,
        title="FIG5: paper instance C=20, p=4, |L|=7 -> I = {C_1, C_2}",
    ))

    benchmark(lambda: compute_level(FIGURE5_LIST, subspaces))


def test_fig5_lemma44_on_random_lists(benchmark):
    """Lemma 4.4 must hold for every random list; level computation is
    the benchmarked kernel."""
    rng = random.Random(42)
    palette = Palette.of_size(60)
    subspaces = split_palette(palette, 6)
    q = len(subspaces)
    lists = [
        frozenset(rng.sample(range(1, 61), rng.randint(1, 60)))
        for _ in range(500)
    ]
    for colors in lists:
        level = compute_level(colors, subspaces)
        bound = len(colors) / (2 ** (level.level + 1) * harmonic_number(q))
        assert len(level.candidates) >= 2**level.level
        assert all(level.intersections[i] >= bound for i in level.candidates)

    def kernel():
        for colors in lists[:100]:
            compute_level(colors, subspaces)

    benchmark(kernel)
