"""FIG1-4 — the slack-reduction walkthrough of Figures 1-4.

Paper artifact: Figures 1-4 illustrate Lemma 4.2 stage by stage on a
small list coloring instance — (1) a defective edge coloring is
computed; (2) the slack-β algorithm runs on one color class; (3) edges
with lists larger than deg(e)/2 are active, others wait; (4) the whole
procedure recurses on the leftover edges.

This benchmark replays those stages on a comparable small instance and
*checks the per-stage invariants the figures illustrate*: the slack
guarantee for active edges, strictly shrinking leftovers, and the
degree halving of the residual graph.
"""

from repro.analysis.tables import format_table
from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.coloring.lists import deg_plus_one_lists
from repro.core.slack_reduction import select_active_edges
from repro.core.solver import compute_initial_edge_coloring, solve_list_edge_coloring
from repro.coloring.verify import check_list_edge_coloring, measure_defects
from repro.graphs.edges import edge_set
from repro.graphs.generators import random_regular
from repro.graphs.line_graph import edge_degree, induced_edge_degrees
from repro.primitives.defective import defect_bound, defective_edge_coloring

from conftest import report


BETA = 2


def _instance():
    # Δ̄ = 18 with a 2Δ-1 = 19 palette: comfortably above the scaled
    # policy's base thresholds, so the Lemma 4.2 loop (not just the
    # base case) drives the run — required for the Figure 4 trajectory.
    graph = random_regular(10, 30, seed=13)
    lists = deg_plus_one_lists(graph, seed=4)
    return graph, lists


def test_fig1_defective_stage(benchmark):
    """Figure 1: the defective edge coloring stage."""
    graph, _lists = _instance()
    initial, _palette, _rounds = compute_initial_edge_coloring(graph, seed=2)
    result = benchmark.pedantic(
        lambda: defective_edge_coloring(graph, BETA, initial),
        rounds=3, iterations=1,
    )
    defects = measure_defects(graph, result.colors)
    for edge in edge_set(graph):
        assert defects[edge] <= defect_bound(edge_degree(graph, edge), BETA)
    classes = len(set(result.colors.values()))
    report(format_table(
        ["β", "classes used", "class bound O(β²)", "max defect", "defect bound"],
        [[BETA, classes, result.color_count,
          max(defects.values()), f"deg(e)/{2 * BETA}"]],
        title="FIG1: defective edge coloring stage",
    ))


def test_fig2_3_active_edge_selection(benchmark):
    """Figures 2-3: per-class activity — every active edge must carry
    the slack-β guarantee |L| > β · deg'(e)."""
    graph, lists = _instance()
    initial, _palette, _rounds = compute_initial_edge_coloring(graph, seed=2)
    defective = defective_edge_coloring(graph, BETA, initial)
    coloring = PartialEdgeColoring(graph, lists)
    degrees = {e: edge_degree(graph, e) for e in edge_set(graph)}

    by_class: dict[int, list] = {}
    for edge, color in defective.colors.items():
        by_class.setdefault(color, []).append(edge)

    rows = []
    for class_value in sorted(by_class)[:6]:
        members = by_class[class_value]
        selection = select_active_edges(
            members,
            lambda e: len(coloring.residual_list(e)),
            degrees,
        )
        class_degrees = induced_edge_degrees(graph, list(selection.active))
        for edge in selection.active:
            list_size = len(coloring.residual_list(edge))
            assert list_size > BETA * class_degrees[edge], (
                "active edge without the slack guarantee — "
                "contradicts Lemma 4.2's 'Enough slack' argument"
            )
        rows.append([
            class_value, len(members), len(selection.active),
            len(selection.inactive),
        ])
    report(format_table(
        ["class", "edges", "active", "inactive"],
        rows,
        title="FIG2-3: activity rule per defective class (first 6 classes)",
    ))
    benchmark(lambda: select_active_edges(
        edge_set(graph),
        lambda e: len(coloring.residual_list(e)),
        degrees,
    ))


def test_fig4_recursion_on_leftovers(benchmark):
    """Figure 4: the residual graph halves in degree and the full run
    terminates with a valid coloring."""
    graph, lists = _instance()
    result = benchmark.pedantic(
        lambda: solve_list_edge_coloring(graph, lists, seed=2),
        rounds=3, iterations=1,
    )
    check_list_edge_coloring(graph, lists, result.coloring)
    trajectory = result.stats["dbar_trajectory"]
    for earlier, later in zip(trajectory, trajectory[1:]):
        assert later <= earlier / 2 + 1
    report(format_table(
        ["outer iteration", "Δ̄ of residual"],
        [[i, dbar] for i, dbar in enumerate(trajectory)],
        title="FIG4: residual degree trajectory (halves per iteration)",
    ))
