"""THM41 — Theorem 4.1: the main result, measured.

Paper claim: (deg(e)+1)-list edge coloring in
``log^{O(log log Δ̄)} Δ̄ + O(log* n)`` deterministic LOCAL rounds.

Measured here: the full solver on a Δ̄ sweep, reporting rounds,
recursion depth (must track O(log log Δ̄)), Lemma 4.3 engagement, and
validity — next to the evaluated recurrence of Section 4.3.
"""

from repro.analysis.tables import format_table
from repro.analysis.theory import predicted_balliu_kuhn_olivetti, theorem41_depth
from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.core.solver import solve_edge_coloring
from repro.graphs.generators import complete_bipartite
from repro.graphs.properties import graph_summary

from conftest import report


def test_thm41_dbar_sweep(benchmark, machinery_policy):
    model = predicted_balliu_kuhn_olivetti()
    rows = []
    for side in (8, 16, 25):
        graph = complete_bipartite(side, side)
        summary = graph_summary(graph)
        result = solve_edge_coloring(graph, policy=machinery_policy, seed=4)
        check_proper_edge_coloring(graph, result.coloring)
        check_palette_bound(result.coloring, summary.greedy_palette_size)
        depth = result.stats.get("max_depth_seen", 0)
        # Depth must track O(log log Δ̄): generous constant 6 covers the
        # two nested lemmas per level.
        assert depth <= 6 * (theorem41_depth(summary.max_edge_degree) + 2)
        rows.append([
            f"K_{side},{side}", summary.max_edge_degree, result.rounds,
            depth, theorem41_depth(summary.max_edge_degree),
            result.stats.get("lem43/reductions", 0),
            result.stats.get("deferred_edges", 0),
            f"{model.rounds(summary.max_edge_degree):.2e}",
        ])
    report(format_table(
        ["instance", "Δ̄", "measured rounds", "measured depth",
         "predicted depth O(loglog Δ̄)", "Lem4.3 reductions",
         "deferred edges", "recurrence T(Δ̄)"],
        rows,
        title="THM41: main theorem — measured execution vs recurrence "
              "(absolute recurrence values carry the paper's literal "
              "log^{8c+2} constants)",
    ))
    benchmark.pedantic(
        lambda: solve_edge_coloring(
            complete_bipartite(8, 8), policy=machinery_policy, seed=4
        ),
        rounds=3, iterations=1,
    )


def test_thm41_solver_wallclock(benchmark, dense_instance, machinery_policy):
    """Timing anchor: one full solve of K_{25,25} with the machinery
    engaged (tracked for performance regressions)."""
    result = benchmark.pedantic(
        lambda: solve_edge_coloring(dense_instance, policy=machinery_policy, seed=4),
        rounds=3, iterations=1,
    )
    check_proper_edge_coloring(dense_instance, result.coloring)
    assert result.stats.get("lem43/reductions", 0) >= 1


def test_thm41_list_variant(benchmark, machinery_policy):
    """The theorem is about LIST coloring; verify on per-edge lists of
    exactly deg(e)+1 random colors."""
    from repro.coloring.lists import deg_plus_one_lists
    from repro.coloring.verify import check_list_edge_coloring
    from repro.graphs.generators import random_regular

    graph = random_regular(10, 40, seed=8)
    lists = deg_plus_one_lists(graph, seed=21)

    from repro.core.solver import solve_list_edge_coloring

    result = benchmark.pedantic(
        lambda: solve_list_edge_coloring(graph, lists, policy=machinery_policy, seed=2),
        rounds=3, iterations=1,
    )
    check_list_edge_coloring(graph, lists, result.coloring)
