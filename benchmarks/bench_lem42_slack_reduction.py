"""LEM42 — Lemma 4.2: slack-1 reduces to O(β² log Δ̄) slack-β instances.

Paper claims checked:
1. the number of slack-β sub-instances actually solved is within the
   ``O(β² log Δ̄)`` budget;
2. the residual maximum edge degree (at least) halves per outer
   iteration;
3. the whole reduction is correct (final coloring validates).
"""

from repro.analysis.tables import format_table
from repro.analysis.theory import lemma42_invocation_bound
from repro.coloring.verify import check_proper_edge_coloring
from repro.core.params import fixed_policy
from repro.core.solver import solve_edge_coloring
from repro.graphs.generators import complete_bipartite
from repro.graphs.properties import graph_summary

from conftest import report


def test_lem42_invocations_within_budget(benchmark):
    graph = complete_bipartite(18, 18)
    summary = graph_summary(graph)
    rows = []
    for beta in (2, 3, 4):
        policy = fixed_policy(
            beta, 4, base_degree_threshold=4, base_palette_threshold=6
        )
        result = solve_edge_coloring(graph, policy=policy, seed=4)
        check_proper_edge_coloring(graph, result.coloring)
        invocations = result.stats["relaxed_invocations"]
        budget = sum(
            lemma42_invocation_bound(b, d, constant=8.0)
            for b, d in zip(result.stats["betas"], result.stats["dbar_trajectory"])
        )
        assert invocations <= budget, (
            f"β={beta}: {invocations} slack-β instances exceed the "
            f"O(β² log Δ̄) budget {budget:.0f}"
        )
        rows.append([
            beta, invocations, f"{budget:.0f}",
            len(result.stats["dbar_trajectory"]), result.rounds,
        ])
    report(format_table(
        ["β", "slack-β instances", "O(β² log Δ̄) budget",
         "outer iterations", "total rounds"],
        rows,
        title=f"LEM42: K_18,18 (Δ̄={summary.max_edge_degree}) — "
              "invocation counts vs the lemma's bound",
    ))
    policy = fixed_policy(2, 4, base_degree_threshold=4, base_palette_threshold=6)
    benchmark.pedantic(
        lambda: solve_edge_coloring(graph, policy=policy, seed=4),
        rounds=3, iterations=1,
    )


def test_lem42_degree_halving(benchmark):
    rows = []
    for side in (10, 16, 22):
        graph = complete_bipartite(side, side)
        result = solve_edge_coloring(graph, seed=2)
        trajectory = result.stats["dbar_trajectory"]
        for earlier, later in zip(trajectory, trajectory[1:]):
            assert later <= earlier / 2 + 1, (
                f"degree did not halve: {earlier} -> {later}"
            )
        rows.append([f"K_{side},{side}", " -> ".join(map(str, trajectory))])
    report(format_table(
        ["instance", "Δ̄ trajectory (halves per iteration)"],
        rows,
        title="LEM42: residual degree trajectories",
    ))
    benchmark.pedantic(
        lambda: solve_edge_coloring(complete_bipartite(10, 10), seed=2),
        rounds=3, iterations=1,
    )
