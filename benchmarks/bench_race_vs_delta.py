"""RACE — the paper's positioning: all algorithms on one substrate.

Reproduces the introduction's comparison table.  Measured at feasible
Δ̄ on identical instances, plus the predicted curves' final crossovers
in the asymptotic regime.

Shape claims checked (the "who wins" facts that must hold):
1. randomized O(log n) is flat in Δ̄ and wins at every feasible scale
   (the known det-vs-rand gap the paper's program attacks);
2. Kuhn-Wattenhofer O(Δ̄ log Δ̄) beats Linial's O(Δ̄²) from moderate Δ̄;
3. the measured deterministic ranking at feasible scale is the
   *reverse* of the asymptotic one — constants dominate, exactly as an
   asymptotic result predicts (recorded as a finding);
4. the predicted final crossovers: BKO20 overtakes Linial at
   Δ̄ ~ 2^160, KW06 at ~2^425, Kuhn20 only at ~2^10^6.
"""

from repro.analysis.fitting import classify_growth, fit_power_law
from repro.analysis.harness import run_race_sweep
from repro.analysis.tables import format_series, format_table
from repro.analysis.theory import (
    crossover_log2_dbar,
    predicted_balliu_kuhn_olivetti,
    predicted_kuhn_soda20,
    predicted_kuhn_wattenhofer,
    predicted_linial_greedy,
)
from repro.graphs.generators import complete_bipartite

from conftest import report


def test_race_measured(benchmark, machinery_policy):
    sizes = [4, 8, 12, 16]
    graphs = [(2 * s - 2, complete_bipartite(s, s)) for s in sizes]
    sweep = run_race_sweep(
        graphs,
        algorithms=[
            "linial_greedy", "kuhn_wattenhofer", "panconesi_rizzi",
            "kuhn_soda20", "randomized_luby",
        ],
        paper_policy=machinery_policy,
        seed=2,
    )
    series = {name: sweep.series(name) for name in sweep.series_names()}
    report(format_series(
        "Δ̄", sweep.xs(), series,
        title="RACE: measured LOCAL rounds on K_{s,s}",
    ))

    randomized = series["randomized_luby"]
    assert max(randomized) <= 4 * max(1, min(randomized)), (
        "randomized rounds should be ~flat in Δ̄"
    )
    lin = series["linial_greedy"]
    kw = series["kuhn_wattenhofer"]
    assert kw[-1] < lin[-1], "KW O(Δ̄ log Δ̄) must beat Linial O(Δ̄²)"
    # growth-shape check: Linial's curve grows ~quadratically faster.
    assert lin[-1] / lin[0] > kw[-1] / kw[0]

    # fitted growth exponents vs each algorithm's predicted order
    dbars = [float(x) for x in sweep.xs()]
    fit_rows = []
    for name, predicted in [
        ("linial_greedy", "2 (Δ̄²)"),
        ("kuhn_wattenhofer", "~1 (Δ̄ log Δ̄)"),
        ("panconesi_rizzi", "~1 (Δ stages)"),
        ("randomized_luby", "0 (log n)"),
    ]:
        fit = fit_power_law(dbars, [float(v) for v in series[name]])
        fit_rows.append([
            name, predicted, f"{fit.exponent:.2f}",
            classify_growth(fit.exponent), f"{fit.r_squared:.3f}",
        ])
    report(format_table(
        ["algorithm", "predicted order", "fitted exponent",
         "classification", "R²"],
        fit_rows,
        title="RACE: measured growth exponents (log-log fit over the sweep)",
    ))
    lin_fit = fit_power_law(dbars, [float(v) for v in series["linial_greedy"]])
    kw_fit = fit_power_law(dbars, [float(v) for v in series["kuhn_wattenhofer"]])
    assert lin_fit.exponent > 1.6, "Linial sweep must look ~quadratic"
    assert kw_fit.exponent < lin_fit.exponent - 0.5

    benchmark.pedantic(
        lambda: run_race_sweep(
            [(6, complete_bipartite(4, 4))],
            algorithms=["kuhn_wattenhofer"], seed=2,
        ),
        rounds=3, iterations=1,
    )


def test_race_predicted_crossovers(benchmark):
    bko = predicted_balliu_kuhn_olivetti()
    expectations = [
        (predicted_linial_greedy(), "Linial O(Δ̄²)", 100, 1000),
        (predicted_kuhn_wattenhofer(), "KW06", 200, 2000),
        (predicted_kuhn_soda20(), "Kuhn20", 1e5, 1e7),
    ]
    rows = []
    for model, label, low, high in expectations:
        x = crossover_log2_dbar(bko, model)
        assert x is not None, f"no crossover vs {label}"
        assert low <= x <= high, (
            f"crossover vs {label} at log2 Δ̄ = {x}, expected in "
            f"[{low}, {high}]"
        )
        rows.append(f"  BKO20 < {label} for good at Δ̄ ≈ 2^{x:,.0f}")
    report(
        "RACE: predicted final crossovers (paper's literal constants)\n"
        + "\n".join(rows)
    )
    benchmark(lambda: crossover_log2_dbar(bko, predicted_linial_greedy()))
