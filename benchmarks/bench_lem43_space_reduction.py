"""LEM43 — Lemma 4.3: the color space reduction and Equation (2).

Paper claims checked, per split parameter p:
1. the partition has q <= 2p subspaces of size <= C/p;
2. every edge receives a subspace and Equation (2) holds
   (deg' <= 24 H_q log p · (|L'|/|L|) · deg) — zero violations in the
   theory regime of uniform full lists;
3. the per-level phase structure runs (level histogram reported).
"""

from repro.analysis.tables import format_table
from repro.coloring.palette import Palette
from repro.core.ledger import RoundLedger
from repro.core.params import scaled_policy
from repro.core.solver import RecursiveSolver, compute_initial_edge_coloring
from repro.core.space_reduction import reduce_color_space
from repro.graphs.edges import edge_set
from repro.graphs.generators import random_regular
from repro.graphs.line_graph import line_graph_adjacency

from conftest import report


def _uniform_instance(graph, palette_size, seed=1):
    palette = Palette.of_size(palette_size)
    edges = edge_set(graph)
    lists = {edge: palette.as_set for edge in edges}
    adjacency = line_graph_adjacency(graph)
    degrees = {edge: len(adjacency[edge]) for edge in edges}
    initial, _p, _r = compute_initial_edge_coloring(graph, seed=seed)
    return edges, lists, palette, adjacency, degrees, initial


def _index_solver():
    policy = scaled_policy()

    def solve(graph, lists, initial, tag):
        child = RecursiveSolver(graph, lists, initial, policy, RoundLedger())
        return child.solve_internal()

    return solve


def test_lem43_p_sweep(benchmark):
    graph = random_regular(10, 40, seed=6)
    edges, lists, palette, adjacency, degrees, initial = _uniform_instance(
        graph, 80
    )
    rows = []
    for p in (2, 4, 8):
        outcome = reduce_color_space(
            edges, lists, palette, p, adjacency, degrees, initial,
            _index_solver(),
        )
        q = len(outcome.subspaces)
        assert q <= 2 * p
        assert all(len(s) <= -(-len(palette) // p) for s in outcome.subspaces)
        assert not outcome.deferred
        assert outcome.eq2_violations == 0
        histogram = ", ".join(
            f"ℓ{level}:{count}"
            for level, count in sorted(outcome.level_histogram.items())
        )
        rows.append([p, q, outcome.phases_run, histogram, 0])
    report(format_table(
        ["p", "q subspaces", "E(1) phases", "level histogram",
         "Eq.(2) violations"],
        rows,
        title="LEM43: color-space reduction on RR(10,40), C=80, "
              "uniform lists",
    ))
    benchmark.pedantic(
        lambda: reduce_color_space(
            edges, lists, palette, 4, adjacency, degrees, initial,
            _index_solver(),
        ),
        rounds=3, iterations=1,
    )


def test_lem43_subinstance_independence(benchmark):
    """After the reduction, the q sub-instances are (almost all)
    independently solvable: the narrowed list dominates the new degree.

    Exact feasibility for EVERY edge is what the lemma's slack
    precondition ``S >= 24 H_{2p} log p`` buys — a slack (~130 for
    p=4) that no finite palette C = O(Δ̄) can reach, so a handful of
    edges may fall short here and are deferred by the solver (the
    documented fallback).  We assert the violation fraction is tiny
    and report it.
    """
    graph = random_regular(8, 24, seed=9)
    edges, lists, palette, adjacency, degrees, initial = _uniform_instance(
        graph, 48
    )
    p = 4
    outcome = reduce_color_space(
        edges, lists, palette, p, adjacency, degrees, initial,
        _index_solver(),
    )
    infeasible = 0
    for index, subspace in enumerate(outcome.subspaces):
        sub_edges = [e for e in edges if outcome.assignment.get(e) == index]
        for edge in sub_edges:
            new_list = lists[edge] & subspace.as_set
            new_degree = sum(
                1 for n in adjacency[edge]
                if outcome.assignment.get(n) == index
            )
            if len(new_list) < new_degree + 1:
                infeasible += 1
    report(
        f"LEM43: sub-instance feasibility — {infeasible}/{len(edges)} "
        "edges below deg'+1 (deferred by the solver; 0 in the "
        "asymptotic slack regime)"
    )
    assert infeasible <= max(2, len(edges) // 20)

    benchmark.pedantic(
        lambda: reduce_color_space(
            edges, lists, palette, p, adjacency, degrees, initial,
            _index_solver(),
        ),
        rounds=2, iterations=1,
    )
