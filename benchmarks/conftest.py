"""Shared fixtures and reporting helpers for the benchmark suite.

Each benchmark module reproduces one experiment of DESIGN.md's
per-experiment index (a figure or lemma/theorem claim of the paper).
Conventions:

* every module prints the experiment's table via :func:`report` —
  captured into ``bench_output.txt`` by the final run;
* every module *asserts* the paper's shape claims (who wins, growth
  order, bound satisfaction) — a benchmark that prints numbers without
  checking them would silently rot;
* heavy solves use ``benchmark.pedantic(..., rounds=1)`` so wall-clock
  stays sane; the timing numbers are for regression tracking, the
  experiment content is in the printed tables;
* the heaviest modules/tests carry ``@pytest.mark.slow`` — deselect
  them with ``-m "not slow"`` (or ``--skip-slow``) for a quick pass.
  Tier-1 (``pytest -x -q`` at the repo root) never collects
  ``bench_*.py`` files at all, so it stays fast by construction.
"""

from __future__ import annotations

from pathlib import Path

import pytest

# The ``slow`` marker and ``--skip-slow`` option are defined in the
# repo-root conftest so they also cover the tier-1 run (CI invokes
# ``python -m pytest -x -q --skip-slow`` at the rootdir).

from repro.graphs.generators import complete_bipartite, random_regular

#: Experiment tables accumulated during the run; dumped in the terminal
#: summary (so they survive pytest's output capture and land in
#: bench_output.txt) and mirrored to benchmarks/latest_reports.txt.
_REPORTS: list[str] = []

_REPORT_FILE = Path(__file__).parent / "latest_reports.txt"


def report(text: str) -> None:
    """Record an experiment table for the end-of-run summary."""
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter) -> None:
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "experiment tables (paper reproduction)")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    # Only complete runs may refresh the mirror: a partial pass (slow
    # tests skipped, -m/-k deselection, a single-file run) holds a
    # subset of the tables, and overwriting would silently erase the
    # other experiments' recorded results.
    stats = terminalreporter.stats
    if stats.get("deselected") or stats.get("skipped"):
        return
    ran_files = {
        Path(report.nodeid.split("::")[0]).name
        for reports in stats.values()
        for report in reports
        if "::" in getattr(report, "nodeid", "")
    }
    all_files = {p.name for p in Path(__file__).parent.glob("bench_*.py")}
    if all_files - ran_files:
        return
    _REPORT_FILE.write_text("\n\n".join(_REPORTS) + "\n")


@pytest.fixture(scope="session")
def machinery_policy():
    """β=2, p=4, low thresholds: the full recursion engages at
    simulation scale (see DESIGN.md §4, parameter policies)."""
    from repro.core.params import machinery_policy as machinery

    return machinery()


@pytest.fixture(scope="session")
def dense_instance():
    """K_{25,25}: the smallest complete bipartite instance on which the
    Lemma 4.3 machinery measurably engages."""
    return complete_bipartite(25, 25)


@pytest.fixture(scope="session")
def medium_regular():
    return random_regular(8, 30, seed=3)
