"""DYN — the paper's motivating application: extend a partial coloring.

Paper claim (introduction): solving LIST coloring "allows to extend an
initial partial coloring of a graph to a full coloring".  Measured
here: after inserting k new links into a colored network, the
incremental extension colors only the new links, keeps every old color
untouched, and costs a vanishing fraction of the full solve.
"""

from repro.analysis.tables import format_table
from repro.coloring.verify import check_proper_edge_coloring
from repro.core.dynamic import insert_edges
from repro.core.solver import solve_edge_coloring
from repro.graphs.generators import random_regular

from conftest import report


def _insertable_links(graph, count):
    nodes = sorted(graph.nodes())
    links = []
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if not graph.has_edge(u, v) and len(links) < count:
                links.append((u, v))
        if len(links) >= count:
            break
    return links


def test_dyn_incremental_vs_full(benchmark):
    graph = random_regular(6, 30, seed=9)
    base = solve_edge_coloring(graph, seed=1)
    rows = []
    for k in (1, 4, 8):
        links = _insertable_links(graph, k)
        updated, extension = insert_edges(graph, base.coloring, links, seed=2)
        check_proper_edge_coloring(updated, extension.coloring)
        unchanged = sum(
            1
            for edge, color in base.coloring.items()
            if extension.coloring[edge] == color
        )
        assert unchanged == len(base.coloring), "old colors must not move"
        full = solve_edge_coloring(updated, seed=1)
        assert extension.rounds < full.rounds, (
            "incremental extension must beat the full re-solve"
        )
        rows.append([
            k, extension.rounds, full.rounds,
            f"{extension.rounds / full.rounds:.2%}",
        ])
    report(format_table(
        ["links inserted", "incremental rounds", "full re-solve rounds",
         "incremental cost"],
        rows,
        title="DYN: extending a coloring after edge insertions "
              "(RR(6,30); old colors untouched by construction)",
    ))
    links = _insertable_links(graph, 4)
    benchmark.pedantic(
        lambda: insert_edges(graph, base.coloring, links, seed=2),
        rounds=3, iterations=1,
    )
