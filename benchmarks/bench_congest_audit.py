"""CONGEST — extension experiment: which building blocks fit CONGEST?

The paper works in the LOCAL model (unbounded messages); the open
follow-up in the field is bandwidth.  This experiment *measures* the
message sizes of the library's genuinely message-passing primitives
under a ``O(log n)``-bit budget:

* FloodMax — payloads are single IDs: CONGEST-compatible by
  construction (sanity anchor);
* Linial color reduction on the line graph — payloads are single
  colors of ``O(log n + log Δ)`` bits: measured CONGEST-compatible.
  Finding: the paper's recursion is LOCAL-only because of its
  *composition* (subgraph coordination), not its primitives.
"""

from repro.analysis.tables import format_table
from repro.coloring.verify import check_proper_edge_coloring
from repro.graphs.generators import complete_bipartite
from repro.graphs.properties import assign_unique_ids
from repro.model.congest import CongestScheduler, standard_bandwidth
from repro.model.edge_network import line_graph_network
from repro.model.network import Network
from repro.primitives.node_algorithms import (
    FloodMaxAlgorithm,
    LinialColorReductionAlgorithm,
)

from conftest import report


def test_congest_floodmax(benchmark):
    graph = complete_bipartite(8, 8)
    network = Network(graph, ids=assign_unique_ids(graph, seed=4))
    budget = standard_bandwidth(network.n, constant=4)
    scheduler = CongestScheduler(network, bandwidth_bits=budget)
    audit = scheduler.run_congest(FloodMaxAlgorithm(horizon=2))
    assert audit.congest_compatible
    report(format_table(
        ["algorithm", "budget (bits)", "max message (bits)", "compatible"],
        [["FloodMax", budget, audit.max_bits_seen, audit.congest_compatible]],
        title="CONGEST: FloodMax message audit",
    ))
    benchmark.pedantic(
        lambda: CongestScheduler(
            network, bandwidth_bits=budget
        ).run_congest(FloodMaxAlgorithm(horizon=2)),
        rounds=3, iterations=1,
    )


def test_congest_linial_reduction(benchmark):
    graph = complete_bipartite(6, 6)
    node_ids = assign_unique_ids(graph, seed=7, id_space_exponent=3)
    network = line_graph_network(graph, node_ids=node_ids)
    # Edge IDs live in an O(node-ID²) space: allow the standard budget
    # over the EDGE id space, still O(log n) bits.
    budget = standard_bandwidth(network.max_id(), constant=2)
    scheduler = CongestScheduler(network, bandwidth_bits=budget, strict=False)
    audit = scheduler.run_congest(
        LinialColorReductionAlgorithm(id_space=network.max_id())
    )
    check_proper_edge_coloring(graph, dict(audit.result.outputs))
    assert audit.congest_compatible, (
        "Linial messages are single colors and must fit O(log n) bits"
    )
    report(format_table(
        ["algorithm", "budget (bits)", "max message (bits)",
         "rounds", "compatible"],
        [["Linial on L(G)", budget, audit.max_bits_seen,
          audit.result.rounds, audit.congest_compatible]],
        title="CONGEST: Linial color reduction audit — the primitive "
              "already fits CONGEST; only the recursion's composition "
              "needs LOCAL",
    ))
    benchmark.pedantic(
        lambda: CongestScheduler(
            network, bandwidth_bits=budget, strict=False
        ).run_congest(
            LinialColorReductionAlgorithm(id_space=network.max_id())
        ),
        rounds=2, iterations=1,
    )
