"""SCHEDULER CORE — the simulation substrate's perf trajectory.

Every simulated algorithm in the repo executes through
``Scheduler.run``; this module benchmarks that substrate itself, on
the line graph of the RACE experiment's largest instance
(``K_{16,16}``, 256 agents of degree 30).

Shape claims checked:
1. the columnar fast path is *bit-identical* to the preserved seed
   loop (``rounds``, ``messages_sent``, ``outputs``) — speed never
   buys a different execution;
2. the fast path beats the seed loop by a wide margin on the largest
   RACE instance (the recorded number in ``BENCH_scheduler.json``,
   written by ``python -m repro bench-core``, shows 8x with the
   broadcast column; the assertion here keeps the standing tolerance
   policy — floor at half the recorded value — for noisy CI boxes,
   raised from 3x when the record was 6x);
3. throughput scales: wall-clock per cell grows no worse than the
   message volume over an n sweep and a Δ sweep, including 10k+-node
   instances (the quasi-polylog claims of the paper only become
   visible at scale — the simulator must not be the bottleneck).
"""

import pytest

from repro.analysis.bench_core import (
    compare_reference_vs_fast,
    largest_race_network,
    scaling_large_n,
    scaling_vs_delta,
    scaling_vs_n,
)
from repro.analysis.tables import format_table

from conftest import report


@pytest.mark.slow
def test_scheduler_core_before_after(benchmark):
    network = largest_race_network()
    record = compare_reference_vs_fast(network, repeats=3)

    report(format_table(
        ["loop", "wall-clock (s)", "rounds/s", "messages/s"],
        [
            ["reference (seed)",
             f"{record['before']['wall_clock_s']:.4f}",
             f"{record['before']['rounds_per_s']:,.0f}",
             f"{record['before']['messages_per_s']:,.0f}"],
            ["fast path",
             f"{record['after']['wall_clock_s']:.4f}",
             f"{record['after']['rounds_per_s']:,.0f}",
             f"{record['after']['messages_per_s']:,.0f}"],
        ],
        title=(
            "SCHEDULER CORE: flood on line graph of K_{16,16} "
            f"(speedup {record['speedup']:.1f}x)"
        ),
    ))

    assert record["identical_results"], (
        "fast path diverged from the reference loop"
    )
    # Recorded trajectory shows 8x (columnar engine); floor at half
    # the recorded value, same policy as the previous 6x/3x floor.
    assert record["speedup"] >= 4.0, (
        f"simulation-core speedup regressed to {record['speedup']:.2f}x"
    )

    from repro.model.scheduler import Scheduler
    from repro.primitives.node_algorithms import FloodMaxAlgorithm

    benchmark.pedantic(
        lambda: Scheduler(network).run(FloodMaxAlgorithm(4)),
        rounds=3, iterations=1,
    )


def test_scheduler_core_scaling_vs_n():
    sweep = scaling_vs_n((64, 128, 256), repeats=1)
    report(format_table(
        ["n", "wall-clock (s)", "messages", "messages/s"],
        [
            [row.x,
             f"{row.values['wall_clock_s']:.4f}",
             row.values["messages_sent"],
             f"{row.values['messages_per_s']:,.0f}"]
            for row in sweep.rows
        ],
        title="SCHEDULER CORE: fast-path scaling vs n (6-regular, flood h=8)",
    ))
    for row in sweep.rows:
        assert row.values["messages_per_s"] > 0
    # Wall-clock must scale no worse than ~linearly in message volume:
    # time per message at the largest cell stays within 4x of the
    # smallest (generous; catches accidental quadratic regressions).
    per_message = [
        row.values["wall_clock_s"] / row.values["messages_sent"]
        for row in sweep.rows
    ]
    assert per_message[-1] <= 4 * per_message[0]


@pytest.mark.slow
def test_scheduler_core_scaling_10k():
    """The columnar engine at 10k+ nodes: throughput must not collapse.

    Timing-free shape check (the recorded absolute numbers live in
    ``BENCH_scheduler.json``): per-message cost on a 10,000-node
    instance stays within 4x of a 1,000-node instance of the same
    degree — the same generosity as the small-n sweep, catching
    accidental super-linear costs in the flat-buffer delivery.
    """
    sweep = scaling_large_n(((1_000, 8, 4), (10_000, 8, 4)), repeats=1)
    report(format_table(
        ["instance", "wall-clock (s)", "messages", "messages/s"],
        [
            [row.x,
             f"{row.values['wall_clock_s']:.4f}",
             row.values["messages_sent"],
             f"{row.values['messages_per_s']:,.0f}"]
            for row in sweep.rows
        ],
        title="SCHEDULER CORE: columnar engine at 10k nodes (8-regular, flood h=4)",
    ))
    assert sweep.rows[-1].values["n"] == 10_000
    per_message = [
        row.values["wall_clock_s"] / row.values["messages_sent"]
        for row in sweep.rows
    ]
    assert per_message[-1] <= 4 * per_message[0]


def test_scheduler_core_scaling_vs_delta():
    sweep = scaling_vs_delta((4, 8, 16), repeats=1)
    report(format_table(
        ["Δ", "wall-clock (s)", "messages", "messages/s"],
        [
            [row.x,
             f"{row.values['wall_clock_s']:.4f}",
             row.values["messages_sent"],
             f"{row.values['messages_per_s']:,.0f}"]
            for row in sweep.rows
        ],
        title="SCHEDULER CORE: fast-path scaling vs Δ (n=256, flood h=8)",
    ))
    per_message = [
        row.values["wall_clock_s"] / row.values["messages_sent"]
        for row in sweep.rows
    ]
    assert per_message[-1] <= 4 * per_message[0]
