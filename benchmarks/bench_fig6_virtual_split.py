"""FIG6 — Figure 6 of the paper: virtual-copy splitting.

Paper artifact: in phase ℓ of Lemma 4.3, nodes split into virtual
copies handling at most ``2^{ℓ-2}`` edges each, so the subspace-index
assignment becomes a feasible ``(deg+1)``-list edge coloring with
maximum line degree ``2^{ℓ-1} - 2``.

This benchmark reproduces the construction on star-heavy graphs (the
worst case: one node owns every edge) and on dense regular graphs,
asserting the two degree bounds the figure illustrates, and times the
construction.
"""

from repro.analysis.tables import format_table
from repro.core.virtual_graph import build_virtual_graph
from repro.graphs.edges import edge_set
from repro.graphs.generators import random_regular, star_graph

from conftest import report


def test_fig6_star_worst_case(benchmark):
    graph = star_graph(64)
    edges = edge_set(graph)
    rows = []
    for phase_level in (4, 5, 6):
        group_size = 2 ** (phase_level - 2)
        result = build_virtual_graph(edges, group_size)
        max_line_degree = max(
            result.graph.degree(u) + result.graph.degree(v) - 2
            for u, v in result.graph.edges()
        )
        assert result.max_virtual_degree() <= group_size
        assert max_line_degree <= 2 ** (phase_level - 1) - 2
        rows.append([
            phase_level, group_size,
            result.graph.number_of_nodes(),
            result.max_virtual_degree(), max_line_degree,
            2 ** (phase_level - 1) - 2,
        ])
    report(format_table(
        ["phase ℓ", "group size 2^{ℓ-2}", "virtual nodes",
         "max virt degree", "max line degree", "paper bound 2^{ℓ-1}-2"],
        rows,
        title="FIG6: virtual splitting of a 64-edge star",
    ))
    benchmark(lambda: build_virtual_graph(edges, 4))


def test_fig6_preserves_edge_bijection(benchmark):
    graph = random_regular(10, 40, seed=5)
    edges = edge_set(graph)

    def build():
        return build_virtual_graph(edges, 4)

    result = benchmark(build)
    assert len(result.real_of) == len(edges)
    for real_edge in edges:
        assert result.real_of[result.virtual_of[real_edge]] == real_edge
