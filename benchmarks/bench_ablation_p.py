"""ABL-P — ablation of the split parameter p (the paper vs Kuhn'20).

The paper's p = √Δ̄ reduces the palette by a polynomial factor per
level (O(log log Δ̄) levels); Kuhn [SODA'20]'s recursion corresponds to
constant p (Θ(log Δ̄) levels).  This ablation runs both shapes plus
intermediate constants and reports recursion structure.

Checked: all variants valid; the constant-p policy shows at least as
many reduction levels as the √Δ̄ policy on the same instance (the
structural difference between the two papers).
"""

import pytest

from repro.analysis.harness import run_policy_sweep
from repro.analysis.tables import format_table
from repro.core.params import fixed_policy, kuhn20_style_policy
from repro.graphs.generators import complete_bipartite

from conftest import report


@pytest.mark.slow
def test_ablation_p(benchmark):
    graph = complete_bipartite(25, 25)
    sqrt_policy = fixed_policy(
        2, 6, base_degree_threshold=4, base_palette_threshold=6
    )  # p ~ sqrt(Δ̄=48) ≈ 7
    small_p = fixed_policy(
        2, 2, base_degree_threshold=4, base_palette_threshold=6
    )
    mid_p = fixed_policy(
        2, 4, base_degree_threshold=4, base_palette_threshold=6
    )
    policies = [small_p, mid_p, sqrt_policy, kuhn20_style_policy()]
    sweep = run_policy_sweep(graph, policies, seed=4)
    rows = [
        [row.x, row.values["rounds"], row.values["lem43 reductions"],
         row.values["max depth"], row.values["deferred"]]
        for row in sweep.rows
    ]
    report(format_table(
        ["policy", "rounds", "Lem4.3 reductions", "max depth", "deferred"],
        rows,
        title="ABL-P: split-parameter ablation on K_25,25 "
              "(p=2 ~ Kuhn'20 shape, p≈√Δ̄ ~ this paper)",
    ))

    by_name = {row.x: row.values for row in sweep.rows}
    # With p=2 each reduction only halves the palette, so reaching a
    # constant palette takes at least as many nested reductions as the
    # polynomial p≈√Δ̄ schedule — whenever both engage at all.
    if by_name["fixed(beta=2,p=2)"]["lem43 reductions"] > 0:
        assert (
            by_name["fixed(beta=2,p=2)"]["max depth"]
            >= by_name["fixed(beta=2,p=6)"]["max depth"]
        )

    benchmark.pedantic(
        lambda: run_policy_sweep(graph, [mid_p], seed=4),
        rounds=2, iterations=1,
    )
