"""DEFECT — Section 4.1: the defective edge coloring.

Paper claims checked per (β, family):
1. defect of every edge <= deg(e) / (2β);
2. color count <= 3 · 4β(4β+1)/2 = O(β²);
3. rounds = O(log* X) — constant-ish across n at fixed β.

Also reports the *measured* defect, which at simulation scale sits far
below the worst-case bound (a reproduction finding recorded in
EXPERIMENTS.md: this is why the downstream recursion mostly sees
near-proper classes).
"""

import pytest

from repro.analysis.tables import format_table
from repro.coloring.verify import check_defective_coloring, measure_defects
from repro.core.solver import compute_initial_edge_coloring
from repro.graphs.generators import (
    blow_up_cycle,
    complete_bipartite,
    random_regular,
)
from repro.graphs.properties import graph_summary
from repro.primitives.defective import defect_bound, defective_edge_coloring
from repro.utils.logstar import log_star

from conftest import report


FAMILIES = [
    ("K_16,16", lambda: complete_bipartite(16, 16)),
    ("RR(12, 48)", lambda: random_regular(12, 48, seed=5)),
    ("blowup(6, 4)", lambda: blow_up_cycle(6, 4)),
]


@pytest.mark.slow
def test_defect_beta_family_sweep(benchmark):
    rows = []
    for name, make in FAMILIES:
        graph = make()
        summary = graph_summary(graph)
        initial, palette, _rounds = compute_initial_edge_coloring(graph, seed=3)
        for beta in (1, 2, 4):
            result = defective_edge_coloring(graph, beta, initial)
            check_defective_coloring(
                graph,
                result.colors,
                lambda deg: defect_bound(deg, beta),
                color_bound=result.color_count,
            )
            defects = measure_defects(graph, result.colors)
            worst_bound = defect_bound(summary.max_edge_degree, beta)
            rows.append([
                name, beta, summary.max_edge_degree,
                max(defects.values()), f"{worst_bound:.1f}",
                len(set(result.colors.values())), result.color_count,
                result.rounds, log_star(palette),
            ])
    report(format_table(
        ["family", "β", "Δ̄", "max defect", "bound Δ̄/2β",
         "colors used", "color bound", "rounds", "log* X"],
        rows,
        title="DEFECT: Section 4.1 defective coloring across β and "
              "families (measured defect << worst-case bound)",
    ))

    graph = FAMILIES[0][1]()
    initial, _p, _r = compute_initial_edge_coloring(graph, seed=3)
    benchmark(lambda: defective_edge_coloring(graph, 2, initial))


def test_defect_rounds_flat_in_n(benchmark):
    """O(log* X) rounds: growing n by 16x moves rounds by at most the
    log* increment (i.e. ~nothing)."""
    rounds = []
    for n in (24, 96, 384):
        graph = random_regular(6, n, seed=7)
        initial, _p, _r = compute_initial_edge_coloring(graph, seed=2)
        result = defective_edge_coloring(graph, 2, initial)
        rounds.append(result.rounds)
    assert max(rounds) - min(rounds) <= 3
    report(format_table(
        ["n", "defective coloring rounds"],
        [[n, r] for n, r in zip((24, 96, 384), rounds)],
        title="DEFECT: rounds vs n at fixed Δ (flat, as O(log* X) predicts)",
    ))
    graph = random_regular(6, 96, seed=7)
    initial, _p, _r = compute_initial_edge_coloring(graph, seed=2)
    benchmark(lambda: defective_edge_coloring(graph, 2, initial))
