"""SCENARIOS — the execution-model wrapper must cost nothing when idle.

The scenario subsystem (PR 4) wraps the columnar engine behind a
delivery-hook seam.  The design promise is that the seam is *free* for
synchronous runs: the identity model builds no hook, ``Scheduler.run``
dispatches to the untouched fast path, and the PR 3 headline workload
(fixed-horizon flood on the line graph of the largest RACE instance)
must therefore run at the same speed whether launched plainly or
through ``repro.scenarios.run_under_model``.

Shape claims checked:
1. the synchronous wrapper's wall-clock overhead on the PR 3 headline
   instance stays under 5% (best-of-N on both sides; the two code
   paths are identical after one dispatch branch, so anything above
   noise would mean the seam leaked into the hot loop);
2. wrapped and plain runs are bit-identical (rounds, messages,
   outputs);
3. the adversarial models still *terminate and report* on the headline
   instance — their numbers are printed for the record, not asserted
   (they measure the adversary, not the engine).
"""

import pytest

from repro.analysis.bench_core import HEADLINE_HORIZON, largest_race_network
from repro.analysis.harness import time_best
from repro.analysis.tables import format_table
from repro.model.scheduler import Scheduler
from repro.primitives.node_algorithms import FloodMaxAlgorithm
from repro.scenarios import run_under_model

from conftest import report

#: Standing tolerance: the wrapper may cost at most this fraction of
#: the plain engine's wall-clock on the headline workload.
MAX_OVERHEAD = 0.05


@pytest.mark.slow
def test_synchronous_wrapper_overhead_under_5_percent(benchmark):
    network = largest_race_network()

    plain_clock, plain = time_best(
        lambda: Scheduler(network).run(FloodMaxAlgorithm(HEADLINE_HORIZON)),
        repeats=5,
    )
    wrapped_clock, wrapped = time_best(
        lambda: run_under_model(
            network, FloodMaxAlgorithm(HEADLINE_HORIZON), model="synchronous"
        ),
        repeats=5,
    )
    overhead = wrapped_clock / max(plain_clock, 1e-9) - 1.0

    report(format_table(
        ["path", "wall-clock (s)", "messages"],
        [
            ["plain Scheduler.run", f"{plain_clock:.4f}", plain.messages_sent],
            ["scenarios synchronous", f"{wrapped_clock:.4f}", wrapped.messages_sent],
        ],
        title=(
            "SCENARIOS: synchronous wrapper on the PR 3 headline "
            f"(overhead {overhead:+.1%})"
        ),
    ))

    assert wrapped.rounds == plain.rounds
    assert wrapped.messages_sent == plain.messages_sent
    assert wrapped.outputs == plain.outputs
    assert overhead <= MAX_OVERHEAD, (
        f"synchronous wrapper overhead {overhead:+.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} on the headline workload"
    )

    benchmark.pedantic(
        lambda: run_under_model(
            network, FloodMaxAlgorithm(4), model="synchronous"
        ),
        rounds=3, iterations=1,
    )


@pytest.mark.slow
def test_adversarial_models_terminate_on_headline_instance():
    network = largest_race_network()
    rows = []
    for model, params in (
        ("bounded_async", {"quota": 2048}),
        ("crash_stop", {"f": 8, "horizon": 4}),
        ("lossy_links", {"drop": 0.1, "duplicate": 0.05}),
    ):
        clock, result = time_best(
            lambda m=model, p=params: run_under_model(
                network,
                FloodMaxAlgorithm(HEADLINE_HORIZON),
                model=m,
                seed=7,
                params=p,
            ),
            repeats=1,
        )
        rows.append([
            model, f"{clock:.4f}", result.rounds, result.messages_sent,
            len(result.outputs),
        ])
        assert result.rounds >= 1
        assert len(result.outputs) <= network.n
    report(format_table(
        ["model", "wall-clock (s)", "rounds", "delivered", "survivors"],
        rows,
        title="SCENARIOS: adversarial models on the PR 3 headline instance",
    ))
