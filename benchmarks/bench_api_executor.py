"""EXECUTOR — the spec-driven batch executor as a measured subsystem.

Claims checked (the properties every later scaling PR leans on):
1. determinism — a 12-spec sweep returns byte-identical result
   fingerprints with ``parallel=1`` and ``parallel=4``;
2. caching — re-running a sweep against a warm cache does no solving
   (orders of magnitude faster than the cold run);
3. the executor adds no measurable overhead over calling the solver
   directly (same rounds, same coloring).
"""

import time

from repro.api import (
    InstanceSpec,
    RunSpec,
    clear_result_cache,
    run,
    run_many,
)
from repro.core.solver import solve_edge_coloring

from conftest import report


def sweep_specs() -> list[RunSpec]:
    instances = [
        InstanceSpec(family="cycle", size=16, seed=1),
        InstanceSpec(family="complete_bipartite", size=4, seed=2),
        InstanceSpec(family="random_regular", size=3, seed=3),
        InstanceSpec(family="torus", size=4, seed=4),
    ]
    algorithms = ["bko20", "linial_greedy", "kuhn_wattenhofer"]
    return [
        RunSpec(instance=instance, algorithm=algorithm)
        for instance in instances
        for algorithm in algorithms
    ]


def test_executor_parallel_determinism_and_cache(benchmark):
    specs = sweep_specs()

    clear_result_cache()
    start = time.perf_counter()
    serial = run_many(specs, parallel=1)
    serial_clock = time.perf_counter() - start

    clear_result_cache()
    start = time.perf_counter()
    parallel = run_many(specs, parallel=4)
    parallel_clock = time.perf_counter() - start

    assert [r.result_fingerprint() for r in serial] == [
        r.result_fingerprint() for r in parallel
    ], "parallel fan-out must be byte-identical to the serial run"

    start = time.perf_counter()
    cached = run_many(specs, parallel=1)
    cached_clock = time.perf_counter() - start
    assert [r.result_fingerprint() for r in cached] == [
        r.result_fingerprint() for r in serial
    ]
    assert cached_clock < serial_clock, "warm cache must beat cold solving"

    report(
        "EXECUTOR: 12-spec sweep (4 instances x 3 algorithms)\n"
        f"  serial (parallel=1):   {serial_clock:.3f}s\n"
        f"  pool   (parallel=4):   {parallel_clock:.3f}s\n"
        f"  warm cache:            {cached_clock * 1000:.1f}ms\n"
        f"  fingerprints identical serial/parallel/cached: True"
    )

    benchmark.pedantic(
        lambda: run_many(specs, parallel=1), rounds=1, iterations=1
    )


def test_executor_matches_direct_solver(benchmark):
    spec = RunSpec(InstanceSpec(family="complete_bipartite", size=4, seed=2))
    via_api = run(spec, cache=False)
    direct = solve_edge_coloring(spec.instance.build(), seed=2)
    assert via_api.rounds == direct.rounds
    assert via_api.coloring == direct.coloring
    benchmark.pedantic(lambda: run(spec, cache=False), rounds=1, iterations=1)
