"""TELEMETRY — tracing you didn't turn on must cost nothing.

The span tracer (PR 9) instruments the executor's attempt loop, the
cache layers, the shard lifecycle, and the service request path.  Its
design promise: disabled (the default), ``trace()`` returns one shared
no-op singleton — no allocation, no clock reads, no I/O — so the
instrumented hot paths run at the speed of uninstrumented code.

Shape claims checked:
1. the disabled ``trace()`` call itself stays in the tens-of-
   nanoseconds range, measured over a tight loop;
2. extrapolated to a *generous* per-spec span budget (far above what
   the executor actually emits per spec), the disabled tracer accounts
   for under 1% of the wall-clock of executing one small spec — the
   worst case, since span count is per-resolution while work grows
   with instance size;
3. a traced run on the same spec still produces a bit-identical
   result (the tracer is observational on both sides of the switch);
4. the job event stream (PR 10) holds the same line: with no events
   directory installed, ``emit_event()`` is one ContextVar read and a
   return — charged at a generous per-spec budget it also stays under
   1% of a small spec's wall-clock.
"""

import pytest

from repro.api import InstanceSpec, RunSpec, run
from repro.analysis.harness import time_best
from repro.analysis.tables import format_table
from repro.api.runner import clear_result_cache
from repro.results import canonical_json
from repro.telemetry.events import active_events_dir, emit_event
from repro.telemetry.trace import trace, trace_context, tracing_enabled

from conftest import report

#: Standing tolerance: disabled tracing may account for at most this
#: fraction of a spec's execution wall-clock.
MAX_OVERHEAD = 0.01

#: Disabled-trace calls timed per loop (large enough that the loop
#: dominates the timer resolution).
CALLS = 100_000

#: Span budget charged to one spec resolution.  The executor emits at
#: most ~8 per spec (run.attempt per attempt, cache.load /
#: cache.publish, the shard claim/drain/publish trio amortized across
#: a whole shard) — charging double keeps headroom without inventing
#: call sites that don't exist.
SPANS_PER_SPEC = 16

#: Event budget charged to one spec resolution.  The executor emits at
#: most one ``spec_resolved`` plus one ``spec_retry`` per extra
#: attempt; the shard lifecycle events are amortized across a whole
#: shard.  Charging eight keeps the same kind of headroom as the span
#: budget.
EVENTS_PER_SPEC = 8


def small_spec() -> RunSpec:
    return RunSpec(
        instance=InstanceSpec(family="complete_bipartite", size=3, seed=9),
        algorithm="bko20",
    )


@pytest.mark.slow
def test_disabled_trace_overhead_under_1_percent(benchmark, tmp_path):
    assert not tracing_enabled()

    def noop_loop():
        for _ in range(CALLS):
            with trace("bench.noop", probe=1):
                pass

    loop_clock, _ = time_best(noop_loop, repeats=5)
    per_call_s = loop_clock / CALLS

    clear_result_cache()
    spec = small_spec()
    spec_clock, plain = time_best(
        lambda: run(spec, cache=False), repeats=5
    )
    overhead = (per_call_s * SPANS_PER_SPEC) / max(spec_clock, 1e-9)

    with trace_context(tmp_path):
        traced = run(spec, cache=False)
    assert canonical_json(traced.to_dict()) == canonical_json(plain.to_dict())

    report(format_table(
        ["quantity", "value"],
        [
            ["disabled trace() per call", f"{per_call_s * 1e9:.0f} ns"],
            ["charged spans per spec", str(SPANS_PER_SPEC)],
            ["small-spec wall-clock", f"{spec_clock * 1e3:.3f} ms"],
            ["extrapolated overhead", f"{overhead:.3%}"],
        ],
        title=(
            "TELEMETRY: disabled tracer on one spec resolution "
            f"(overhead {overhead:.3%}, budget {MAX_OVERHEAD:.0%})"
        ),
    ))

    assert overhead <= MAX_OVERHEAD, (
        f"disabled tracing charges {overhead:.3%} of a small spec's "
        f"wall-clock ({per_call_s * 1e9:.0f} ns/call x {SPANS_PER_SPEC} "
        f"spans vs {spec_clock * 1e3:.3f} ms), over the "
        f"{MAX_OVERHEAD:.0%} budget"
    )

    benchmark.pedantic(noop_loop, rounds=3, iterations=1)


@pytest.mark.slow
def test_disabled_event_emission_overhead_under_1_percent(benchmark):
    assert active_events_dir() is None

    def noop_loop():
        for _ in range(CALLS):
            emit_event("bench_noop", probe=1)

    loop_clock, _ = time_best(noop_loop, repeats=5)
    per_call_s = loop_clock / CALLS

    clear_result_cache()
    spec = small_spec()
    spec_clock, _ = time_best(lambda: run(spec, cache=False), repeats=5)
    overhead = (per_call_s * EVENTS_PER_SPEC) / max(spec_clock, 1e-9)

    report(format_table(
        ["quantity", "value"],
        [
            ["disabled emit_event() per call", f"{per_call_s * 1e9:.0f} ns"],
            ["charged events per spec", str(EVENTS_PER_SPEC)],
            ["small-spec wall-clock", f"{spec_clock * 1e3:.3f} ms"],
            ["extrapolated overhead", f"{overhead:.3%}"],
        ],
        title=(
            "TELEMETRY: disabled event emission on one spec resolution "
            f"(overhead {overhead:.3%}, budget {MAX_OVERHEAD:.0%})"
        ),
    ))

    assert overhead <= MAX_OVERHEAD, (
        f"disabled event emission charges {overhead:.3%} of a small "
        f"spec's wall-clock ({per_call_s * 1e9:.0f} ns/call x "
        f"{EVENTS_PER_SPEC} events vs {spec_clock * 1e3:.3f} ms), over "
        f"the {MAX_OVERHEAD:.0%} budget"
    )

    benchmark.pedantic(noop_loop, rounds=3, iterations=1)
