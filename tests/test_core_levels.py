"""Tests for Lemma 4.4 (levels) — including the paper's Figure 5 instance."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AlgorithmInvariantError, InvalidInstanceError
from repro.coloring.palette import Palette, split_palette
from repro.core.levels import compute_level, lemma_44_index_set
from repro.utils.harmonic import harmonic_number
from repro.utils.logstar import ilog2


class TestFigure5:
    """The paper's worked example: C = 20, p = 4,
    L_e = {1, 2, 5, 6, 7, 12, 17} (size 7) => I = {1, 2} since
    |L ∩ C_1| = 3 and |L ∩ C_2| = 2 are both >= 7 / (2 H_4) ≈ 1.68."""

    LIST = frozenset({1, 2, 5, 6, 7, 12, 17})

    def _subspaces(self):
        return split_palette(Palette.of_size(20), 4)

    def test_intersection_sizes(self):
        subspaces = self._subspaces()
        sizes = [len(self.LIST & s.as_set) for s in subspaces]
        assert sizes == [3, 2, 1, 1]

    def test_lemma44_gives_k2_top2(self):
        k, indices = lemma_44_index_set([3, 2, 1, 1])
        assert k == 2
        assert sorted(indices) == [0, 1]  # the paper's I = {1, 2}, 1-based

    def test_threshold_matches_paper(self):
        bound = 7 / (2 * harmonic_number(4))
        assert math.isclose(bound, 1.68, abs_tol=0.01)

    def test_compute_level(self):
        level = compute_level(self.LIST, self._subspaces())
        # We take the LARGEST valid level: with threshold
        # 7 / (8 H_4) = 0.42 every subspace qualifies, so level 2.
        assert level.level == 2
        assert set(level.candidates) == {0, 1, 2, 3}
        assert level.best_candidate() == 0  # largest intersection
        # The paper's k=2 level (floor(log2 2) = 1) is also valid:
        # at least 2^1 candidates meet the level-1 threshold.
        threshold_l1 = 7 / (4 * harmonic_number(4))
        qualifying = [i for i in range(4) if level.intersections[i] >= threshold_l1]
        assert len(qualifying) >= 2


class TestLemma44General:
    def test_single_subspace(self):
        k, indices = lemma_44_index_set([5])
        assert k == 1 and indices == [0]

    def test_uniform_intersections(self):
        # p equal parts, each 1/p of the list: the smallest valid k is
        # the first with |L|/p >= |L|/(k * H_p), i.e. k >= p / H_p.
        k, indices = lemma_44_index_set([3, 3, 3, 3])
        assert k == 2  # 4 / H_4 ≈ 1.92 -> k = 2
        # k = p is also valid (|L|/p >= |L|/(p H_p)); check the bound.
        bound = 12 / (4 * harmonic_number(4))
        assert all(size >= bound for size in [3, 3, 3, 3])

    def test_empty_list_rejected(self):
        with pytest.raises(InvalidInstanceError):
            lemma_44_index_set([0, 0])

    @settings(deadline=None, max_examples=200)
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=24)
    )
    def test_lemma_44_always_holds(self, intersections):
        """The lemma proper: for ANY intersection profile there is a
        valid (k, I) pair meeting the harmonic bound."""
        if sum(intersections) == 0:
            return
        p = len(intersections)
        k, indices = lemma_44_index_set(intersections)
        assert len(indices) == k
        bound = sum(intersections) / (k * harmonic_number(p))
        assert all(intersections[i] >= bound for i in indices)


class TestComputeLevel:
    def test_rejects_empty_list(self):
        with pytest.raises(InvalidInstanceError):
            compute_level(frozenset(), split_palette(Palette.of_size(4), 2))

    def test_rejects_non_partition(self):
        # subspaces that miss the list's colors
        with pytest.raises(InvalidInstanceError):
            compute_level(frozenset({99}), split_palette(Palette.of_size(4), 2))

    def test_concentrated_list_gets_level_zero(self):
        """All colors in one subspace: only one good candidate."""
        subspaces = split_palette(Palette.of_size(16), 4)
        level = compute_level(frozenset({1, 2, 3, 4}), subspaces)
        assert level.level == 0
        assert level.best_candidate() == 0

    def test_spread_list_gets_high_level(self):
        """Colors spread uniformly over many subspaces: level ~ log q."""
        palette = Palette.of_size(64)
        subspaces = split_palette(palette, 16)  # 16 parts of 4
        spread = frozenset(range(1, 65))  # everything
        level = compute_level(spread, subspaces)
        assert level.level >= 3
        assert len(level.candidates) >= 2**level.level

    @settings(deadline=None, max_examples=100)
    @given(
        st.sets(st.integers(min_value=1, max_value=60), min_size=1),
        st.integers(min_value=1, max_value=15),
    )
    def test_level_contract_on_random_lists(self, colors, p):
        palette = Palette.of_size(60)
        if p > 60:
            return
        subspaces = split_palette(palette, p)
        q = len(subspaces)
        level = compute_level(frozenset(colors), subspaces)
        assert 0 <= level.level <= ilog2(q)
        assert len(level.candidates) >= 2**level.level
        threshold = len(colors) / (2 ** (level.level + 1) * harmonic_number(q))
        for index in level.candidates:
            assert level.intersections[index] >= threshold
