"""Tests for the fully message-passing edge coloring pipeline."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.linial_greedy import linial_greedy_coloring
from repro.coloring.verify import check_proper_edge_coloring
from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    random_regular,
    star_graph,
)
from repro.primitives.distributed_pipeline import (
    distributed_linial_greedy_edge_coloring,
)
from repro.utils.logstar import log_star


@pytest.mark.parametrize(
    "make_graph",
    [
        lambda: cycle_graph(10),
        lambda: star_graph(7),
        lambda: complete_bipartite(4, 5),
        lambda: random_regular(5, 14, seed=6),
    ],
)
def test_pipeline_valid_on_zoo(make_graph):
    graph = make_graph()
    result = distributed_linial_greedy_edge_coloring(graph, seed=3)
    check_proper_edge_coloring(graph, result.coloring)
    assert result.messages > 0


class TestAgainstLedgerAccounting:
    def test_rounds_decompose_as_logstar_plus_classes(self):
        """The simulated total must be exactly stage-1 (O(log* n))
        plus one round per class plus the final announcement round —
        the [Lin87] accounting, realised in messages.

        (The absolute class palettes of the simulated and functional
        forms differ: the message-passing schedule plans from the
        nominal ID space and stalls at a smaller O(Δ̄²) palette than
        the palette-remeasuring functional form — both are valid.)"""
        graph = random_regular(4, 16, seed=2)
        simulated = distributed_linial_greedy_edge_coloring(graph, seed=5)
        functional = linial_greedy_coloring(graph, seed=5)
        stage1 = simulated.rounds - (simulated.class_palette + 1)
        # stage 1 within a round of the functional Linial stage
        assert abs(stage1 - functional.details["linial_rounds"]) <= 1
        # both intermediate palettes are O(Δ̄²)
        dbar = 2 * 4 - 2
        assert simulated.class_palette <= 16 * (dbar + 2) ** 2
        assert functional.details["class_palette"] <= 16 * (dbar + 2) ** 2

    def test_class_palette_is_quadratic(self):
        graph = random_regular(5, 14, seed=1)
        result = distributed_linial_greedy_edge_coloring(graph, seed=2)
        dbar = 2 * 5 - 2
        assert result.class_palette <= 16 * (dbar + 2) ** 2


class TestScaling:
    def test_stage1_rounds_logstar(self):
        graph = cycle_graph(200)
        result = distributed_linial_greedy_edge_coloring(graph, seed=4)
        # total = log* + class palette; with Δ̄=2 the palette is tiny
        assert result.rounds <= log_star(200**4) + 30

    def test_empty_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        result = distributed_linial_greedy_edge_coloring(graph)
        assert result.coloring == {}
        assert result.rounds == 0

    @settings(deadline=None, max_examples=8)
    @given(st.integers(min_value=0, max_value=10**5))
    def test_random_instances(self, seed):
        graph = random_regular(4, 12, seed=seed % 47)
        result = distributed_linial_greedy_edge_coloring(graph, seed=seed % 13)
        check_proper_edge_coloring(graph, result.coloring)
