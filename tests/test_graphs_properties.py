"""Tests for graph validation, IDs and summaries."""

import networkx as nx
import pytest

from repro.errors import InvalidInstanceError
from repro.graphs.properties import (
    assign_unique_ids,
    graph_summary,
    max_degree,
    validate_simple_graph,
)


class TestValidateSimpleGraph:
    def test_accepts_simple(self):
        validate_simple_graph(nx.cycle_graph(5))

    def test_rejects_self_loop(self):
        g = nx.Graph()
        g.add_edge(1, 1)
        with pytest.raises(InvalidInstanceError):
            validate_simple_graph(g)

    def test_rejects_directed(self):
        with pytest.raises(InvalidInstanceError):
            validate_simple_graph(nx.DiGraph([(0, 1)]))

    def test_rejects_multigraph(self):
        with pytest.raises(InvalidInstanceError):
            validate_simple_graph(nx.MultiGraph([(0, 1), (0, 1)]))


class TestMaxDegree:
    def test_empty(self):
        assert max_degree(nx.Graph()) == 0

    def test_star(self):
        assert max_degree(nx.star_graph(7)) == 7


class TestAssignUniqueIds:
    def test_sorted_assignment(self):
        g = nx.path_graph(4)
        ids = assign_unique_ids(g)
        assert ids == {0: 1, 1: 2, 2: 3, 3: 4}

    def test_seeded_assignment_unique_and_polynomial(self):
        g = nx.cycle_graph(10)
        ids = assign_unique_ids(g, seed=3)
        values = list(ids.values())
        assert len(set(values)) == 10
        assert all(1 <= v <= 100 for v in values)  # n^2 space

    def test_seeded_assignment_reproducible(self):
        g = nx.cycle_graph(10)
        assert assign_unique_ids(g, seed=3) == assign_unique_ids(g, seed=3)

    def test_different_seeds_differ(self):
        g = nx.cycle_graph(20)
        assert assign_unique_ids(g, seed=1) != assign_unique_ids(g, seed=2)

    def test_empty_graph(self):
        assert assign_unique_ids(nx.Graph()) == {}


class TestGraphSummary:
    def test_complete_bipartite(self):
        g = nx.complete_bipartite_graph(3, 3)
        summary = graph_summary(g)
        assert summary.nodes == 6
        assert summary.edges == 9
        assert summary.max_degree == 3
        assert summary.max_edge_degree == 4
        assert summary.greedy_palette_size == 5

    def test_edgeless(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        summary = graph_summary(g)
        assert summary.greedy_palette_size == 0
