"""The vectorized numpy engine: bit-for-bit equal, or not selected.

The engine seam's whole contract is that backend choice is *invisible*
in results: ``engine="numpy"`` must reproduce the list engine exactly —
rounds, messages, outputs, inbox iteration order, traces — on every
path (plain runs, every adversarial delivery model, memory-mapped
arenas at 100k nodes), and a result computed under one engine must be
a byte-identical cache entry for the other.  ``engine="auto"`` must
degrade to the list engine silently when numpy cannot be imported;
``engine="numpy"`` must refuse loudly.

Everything that needs numpy is skipped (not failed) on interpreters
without it — the list engine is the pinned fallback, so the rest of
the suite is the coverage there.
"""

from __future__ import annotations

import json

import networkx as nx
import pytest

from repro.api import InstanceSpec, RunSpec, ScenarioSpec
from repro.api.runner import clear_result_cache, run
from repro.errors import EngineUnavailableError
from repro.graphs.generators import random_regular
from repro.model.network import Network
from repro.model.scheduler import (
    Scheduler,
    engine_override,
    numpy_available,
    resolve_engine,
)
from repro.primitives.node_algorithms import (
    FloodMaxAlgorithm,
    LinialColorReductionAlgorithm,
    PushFloodAlgorithm,
)
from repro.scenarios import run_under_model
from test_model_scheduler_equivalence import MixedSendPattern

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

#: The three adversarial delivery models, with non-default parameters
#: so their hooks actually defer / crash / drop / duplicate.
ADVERSARIAL_MODELS = [
    ("bounded_async", {"quota": 5, "jitter": 2}),
    ("crash_stop", {"f": 2, "horizon": 6}),
    ("lossy_links", {"drop": 0.2, "duplicate": 0.1}),
]


def _network(seed: int, n: int = 14, p: float = 0.4) -> Network:
    return Network(nx.gnp_random_graph(n, p, seed=seed))


def _assert_identical(a, b):
    """Diff every observable of two ExecutionResults."""
    assert a.rounds == b.rounds
    assert a.messages_sent == b.messages_sent
    assert a.outputs == b.outputs
    assert a.trace == b.trace
    assert a.max_message_size == b.max_message_size


@requires_numpy
class TestAdversarialEquivalence:
    """numpy == list under every delivery model, every observable."""

    @pytest.mark.parametrize("model,params", ADVERSARIAL_MODELS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_broadcast_flood_bit_identical(self, model, params, seed):
        network = _network(seed)
        results = {}
        for engine in ("list", "numpy"):
            with engine_override(engine):
                results[engine] = run_under_model(
                    network,
                    FloodMaxAlgorithm(6),
                    model=model,
                    seed=seed,
                    params=params,
                )
        _assert_identical(results["list"], results["numpy"])

    @pytest.mark.parametrize("model,params", ADVERSARIAL_MODELS)
    def test_push_path_bit_identical(self, model, params):
        # Distinct payload per port: the hooked scatter path, with
        # busy-link dedup and requeue exercised by the adversaries.
        network = _network(7)
        results = {}
        for engine in ("list", "numpy"):
            with engine_override(engine):
                results[engine] = run_under_model(
                    network,
                    PushFloodAlgorithm(6),
                    model=model,
                    seed=9,
                    params=params,
                )
        _assert_identical(results["list"], results["numpy"])

    @pytest.mark.parametrize("model,params", ADVERSARIAL_MODELS)
    def test_object_payloads_bit_identical(self, model, params):
        # Tuple payloads force the object column; inbox iteration
        # order is part of MixedSendPattern's output.
        network = _network(5)
        results = {}
        for engine in ("list", "numpy"):
            with engine_override(engine):
                results[engine] = run_under_model(
                    network,
                    MixedSendPattern(5),
                    model=model,
                    seed=2,
                    params=params,
                )
        _assert_identical(results["list"], results["numpy"])


@requires_numpy
class TestApiParity:
    """Engine choice through the executor: same results, same cache."""

    @staticmethod
    def _specs() -> list[RunSpec]:
        instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
        return [
            RunSpec(instance=instance, algorithm="bko20"),
            RunSpec(instance=instance, algorithm="linial_greedy"),
            RunSpec(
                instance=instance,
                algorithm="greedy_sequential",
                scenario=ScenarioSpec(
                    model="lossy_links", seed=3, params={"drop": 0.2}
                ),
            ),
        ]

    def test_run_results_byte_identical(self):
        clear_result_cache()
        for spec in self._specs():
            listed = run(spec, cache=False, engine="list")
            vectored = run(spec, cache=False, engine="numpy")
            assert json.dumps(listed.to_dict(), sort_keys=True) == json.dumps(
                vectored.to_dict(), sort_keys=True
            )

    def test_result_cached_under_one_engine_hits_under_the_other(
        self, tmp_path, monkeypatch
    ):
        import repro.api.runner as runner_module

        spec = self._specs()[0]
        clear_result_cache()
        first = run(spec, cache_dir=tmp_path, engine="numpy")
        cached_bytes = {
            path.name: path.read_bytes() for path in tmp_path.rglob("*.json")
        }
        assert cached_bytes  # the numpy run actually populated the cache
        clear_result_cache()  # force the disk-cache path
        # Engine choice is fingerprint-neutral, so the list-engine run
        # must be served entirely from the numpy run's cache entry —
        # make any re-execution a loud failure instead of a silent one.
        monkeypatch.setattr(
            runner_module,
            "_execute_with_policy",
            lambda *args, **kwargs: pytest.fail(
                "cross-engine lookup missed the cache"
            ),
        )
        second = run(spec, cache_dir=tmp_path, engine="list")
        assert second.fingerprint == first.fingerprint
        assert second.to_dict() == first.to_dict()
        assert {
            path.name: path.read_bytes() for path in tmp_path.rglob("*.json")
        } == cached_bytes  # the list run rewrote nothing


@requires_numpy
class TestMemmapLargeN:
    @pytest.mark.slow
    def test_100k_node_memmap_run_matches_list_engine(self):
        from repro.model.engine_numpy import (
            NumpyRoundArena,
            shared_numpy_arena,
        )

        network = Network(random_regular(4, 100_000, seed=7))
        arena = NumpyRoundArena(memmap=True)
        try:
            with shared_numpy_arena(arena):
                vectored = Scheduler(network, engine="numpy").run(
                    FloodMaxAlgorithm(2)
                )
            assert arena._files  # the run really leased memmap backing
        finally:
            arena.close()
        listed = Scheduler(network, engine="list").run(FloodMaxAlgorithm(2))
        _assert_identical(listed, vectored)

    @pytest.mark.slow
    def test_100k_node_push_path_matches_list_engine(self):
        network = Network(random_regular(4, 100_000, seed=7))
        vectored = Scheduler(network, engine="numpy").run(
            PushFloodAlgorithm(2)
        )
        listed = Scheduler(network, engine="list").run(PushFloodAlgorithm(2))
        _assert_identical(listed, vectored)


class TestAutoDegrade:
    """auto falls back silently, numpy refuses loudly, when numpy is gone."""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        import builtins

        import repro.model.scheduler as sched

        real_import = builtins.__import__

        def failing_import(name, *args, **kwargs):
            if name == "numpy" or name.startswith("numpy."):
                raise ImportError("numpy disabled for this test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", failing_import)
        # Reset the import-probe memo so the fake failure is observed;
        # monkeypatch restores the pre-test value on teardown.
        monkeypatch.setattr(sched, "_NUMPY_MEMO", None)
        yield

    def test_auto_resolves_to_list(self, no_numpy):
        assert not numpy_available()
        assert resolve_engine("auto", FloodMaxAlgorithm(3)) == "list"

    def test_auto_run_degrades_to_list_results(self, no_numpy):
        network = _network(4)
        degraded = Scheduler(network, engine="auto").run(FloodMaxAlgorithm(4))
        listed = Scheduler(network, engine="list").run(FloodMaxAlgorithm(4))
        _assert_identical(listed, degraded)

    def test_explicit_numpy_raises_loudly(self, no_numpy):
        network = _network(4)
        with pytest.raises(EngineUnavailableError, match="engine='numpy'"):
            Scheduler(network, engine="numpy").run(FloodMaxAlgorithm(4))

    def test_auto_picks_numpy_only_for_scalar_payload_algorithms(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        assert resolve_engine("auto", FloodMaxAlgorithm(3)) == "numpy"
        # MixedSendPattern sends tuples and does not declare
        # scalar_payloads, so auto keeps the list engine.
        assert resolve_engine("auto", MixedSendPattern(3)) == "list"


@requires_numpy
class TestPlainEquivalence:
    """Unhooked runs: the vectorized compose/flush/receive phases."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 5])
    def test_mixed_pattern_with_traces(self, seed):
        network = _network(seed)
        listed = Scheduler(
            network, engine="list", record_trace=True
        ).run(MixedSendPattern(5))
        vectored = Scheduler(
            network, engine="numpy", record_trace=True
        ).run(MixedSendPattern(5))
        _assert_identical(listed, vectored)

    def test_linial_on_regular_graph(self):
        network = Network(random_regular(4, 30, seed=3))
        listed = Scheduler(network, engine="list").run(
            LinialColorReductionAlgorithm(id_space=network.max_id())
        )
        vectored = Scheduler(network, engine="numpy").run(
            LinialColorReductionAlgorithm(id_space=network.max_id())
        )
        _assert_identical(listed, vectored)
