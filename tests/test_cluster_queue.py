"""The lease protocol: claims, heartbeats, stale reclamation (fake clock)."""

from __future__ import annotations

import json

from repro.cluster import ShardQueue
from repro.cluster.queue import claim_path, result_path


class FakeClock:
    """Injectable time source — lease expiry without sleeping."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_queue(job_dir, worker: str, clock: FakeClock, ttl: float = 10.0):
    return ShardQueue(job_dir, worker_id=worker, lease_ttl=ttl, clock=clock)


class TestClaim:
    def test_fresh_claim_wins_and_records_the_lease(self, tmp_path):
        clock = FakeClock(5.0)
        queue = make_queue(tmp_path, "w1", clock)
        assert queue.claim(0)
        lease = queue.lease_of(0)
        assert lease["worker"] == "w1"
        assert lease["claimed_at"] == 5.0
        assert lease["heartbeat_at"] == 5.0

    def test_second_worker_cannot_claim_a_live_lease(self, tmp_path):
        clock = FakeClock()
        assert make_queue(tmp_path, "w1", clock).claim(0)
        assert not make_queue(tmp_path, "w2", clock).claim(0)

    def test_claim_is_reentrant_for_the_owner(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, "w1", clock)
        assert queue.claim(0)
        assert queue.claim(0)

    def test_done_shard_is_never_claimed(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, "w1", clock)
        result_path(tmp_path, 0).parent.mkdir(parents=True)
        result_path(tmp_path, 0).write_text("{}")
        assert not queue.claim(0)
        assert not queue.claimable(0)


class TestStaleReclamation:
    def test_lease_goes_stale_only_after_the_ttl(self, tmp_path):
        clock = FakeClock()
        w1 = make_queue(tmp_path, "w1", clock, ttl=10.0)
        w2 = make_queue(tmp_path, "w2", clock, ttl=10.0)
        assert w1.claim(0)
        clock.advance(9.9)
        assert not w2.claimable(0)
        assert not w2.claim(0)
        clock.advance(0.2)  # 10.1 > ttl
        assert w2.claimable(0)
        assert w2.claim(0)
        assert w2.lease_of(0)["worker"] == "w2"

    def test_heartbeat_keeps_the_lease_alive(self, tmp_path):
        clock = FakeClock()
        w1 = make_queue(tmp_path, "w1", clock, ttl=10.0)
        w2 = make_queue(tmp_path, "w2", clock, ttl=10.0)
        assert w1.claim(0)
        for _ in range(5):
            clock.advance(6.0)
            assert w1.heartbeat(0)
        # 30 seconds of wall clock, never stale: heartbeats refreshed it.
        assert not w2.claim(0)

    def test_heartbeat_preserves_claimed_at(self, tmp_path):
        clock = FakeClock(1.0)
        queue = make_queue(tmp_path, "w1", clock)
        queue.claim(0)
        clock.advance(3.0)
        queue.heartbeat(0)
        lease = queue.lease_of(0)
        assert lease["claimed_at"] == 1.0
        assert lease["heartbeat_at"] == 4.0

    def test_usurped_worker_learns_from_failed_heartbeat(self, tmp_path):
        clock = FakeClock()
        w1 = make_queue(tmp_path, "w1", clock, ttl=10.0)
        w2 = make_queue(tmp_path, "w2", clock, ttl=10.0)
        assert w1.claim(0)
        clock.advance(11.0)
        assert w2.claim(0)  # reclaims the stale lease
        assert not w1.heartbeat(0)  # w1 must abandon the shard
        assert w2.lease_of(0)["worker"] == "w2"

    def test_torn_claim_file_does_not_wedge_the_shard(self, tmp_path):
        # A worker can die between creating the claim (O_CREAT|O_EXCL)
        # and writing its lease JSON.  The empty file must be treated
        # like a stale lease — otherwise no claim can ever succeed and
        # the shard is stuck until someone hand-deletes the file.
        clock = FakeClock()
        claim_path(tmp_path, 0).parent.mkdir(parents=True)
        claim_path(tmp_path, 0).touch()  # torn: exists, no content
        queue = make_queue(tmp_path, "w1", clock)
        assert queue.claimable(0)
        assert queue.claim(0)
        assert queue.lease_of(0)["worker"] == "w1"

    def test_malformed_lease_counts_as_stale(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, "w1", clock)
        claim_path(tmp_path, 0).parent.mkdir(parents=True)
        claim_path(tmp_path, 0).write_text(json.dumps({"worker": "ghost"}))
        assert queue.claimable(0)
        assert queue.claim(0)
        assert queue.lease_of(0)["worker"] == "w1"


class TestReleaseAndStatus:
    def test_release_only_touches_our_own_lease(self, tmp_path):
        clock = FakeClock()
        w1 = make_queue(tmp_path, "w1", clock)
        w2 = make_queue(tmp_path, "w2", clock)
        assert w1.claim(0)
        w2.release(0)  # not w2's — must be a no-op
        assert w1.lease_of(0)["worker"] == "w1"
        w1.release(0)
        assert w1.lease_of(0) is None
        w1.release(0)  # idempotent

    def test_status_buckets(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, "w1", clock, ttl=10.0)
        # shard 0 done, shard 1 running, shard 2 stale, shard 3 pending
        result_path(tmp_path, 0).parent.mkdir(parents=True)
        result_path(tmp_path, 0).write_text("{}")
        other = make_queue(tmp_path, "other", clock, ttl=10.0)
        assert other.claim(1)
        assert other.claim(2)
        clock.advance(11.0)
        assert other.heartbeat(1)
        # shard 2's heartbeat lapses (simulated crash: no heartbeat)
        status = queue.status(4)
        assert status["done"] == [0]
        assert status["running"] == [1]
        assert status["stale"] == [2]
        assert status["pending"] == [3]
        assert not status["complete"]
