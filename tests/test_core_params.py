"""Tests for parameter policies."""

import pytest

from repro.errors import ParameterError
from repro.core.params import (
    ParameterPolicy,
    fixed_policy,
    kuhn20_style_policy,
    paper_policy,
    scaled_policy,
)


class TestPaperPolicy:
    def test_beta_is_polylog_power_4c(self):
        policy = paper_policy(c=1, alpha=1)
        # log2(256) = 8 -> beta = 8^4 = 4096
        assert policy.beta(256, 1000) == 8**4

    def test_beta_exceeds_feasible_degrees(self):
        """The documented degeneracy: at simulation scale the paper's β
        dwarfs Δ̄ itself, so the defective coloring trivialises."""
        policy = paper_policy()
        assert policy.beta(100, 199) > 100

    def test_split_is_sqrt(self):
        policy = paper_policy()
        assert policy.split(100, 199) == 10

    def test_rejects_bad_constants(self):
        with pytest.raises(ParameterError):
            paper_policy(c=0)


class TestScaledPolicy:
    def test_beta_is_log(self):
        policy = scaled_policy()
        assert policy.beta(256, 1000) == 8

    def test_split_is_sqrt(self):
        policy = scaled_policy()
        assert policy.split(64, 127) == 8

    def test_minimums(self):
        policy = scaled_policy()
        assert policy.beta(1, 2) >= 2
        assert policy.split(1, 2) >= 2


class TestKuhn20Policy:
    def test_constant_parameters(self):
        policy = kuhn20_style_policy()
        for dbar in (4, 64, 4096):
            assert policy.beta(dbar, dbar) == 2
            assert policy.split(dbar, dbar) == 2


class TestFixedPolicy:
    def test_returns_given_values(self):
        policy = fixed_policy(3, 5)
        assert policy.beta(1000, 1) == 3
        assert policy.split(1000, 1) == 5

    def test_rejects_too_small(self):
        with pytest.raises(ParameterError):
            fixed_policy(1, 4)
        with pytest.raises(ParameterError):
            fixed_policy(2, 1)


class TestPolicyValidation:
    def test_rejects_bad_thresholds(self):
        with pytest.raises(ParameterError):
            ParameterPolicy(
                name="bad",
                beta=lambda d, c: 2,
                split=lambda d, c: 2,
                base_degree_threshold=0,
            )
        with pytest.raises(ParameterError):
            ParameterPolicy(
                name="bad",
                beta=lambda d, c: 2,
                split=lambda d, c: 2,
                max_depth=0,
            )

    def test_describe_contains_name(self):
        assert scaled_policy().describe()["name"].startswith("scaled")
