"""Tests for the Lemma 4.2 helpers (activity rule, slack arithmetic)."""

from repro.core.slack_reduction import (
    SlackLoopStats,
    active_slack_guarantee,
    select_active_edges,
)


class TestActivityRule:
    def test_large_lists_are_active(self):
        edges = [(0, 1), (1, 2)]
        degrees = {(0, 1): 6, (1, 2): 6}
        sizes = {(0, 1): 4, (1, 2): 3}
        selection = select_active_edges(edges, lambda e: sizes[e], degrees)
        assert selection.active == ((0, 1),)
        assert selection.inactive == ((1, 2),)

    def test_boundary_is_strict(self):
        """|L| must be STRICTLY greater than deg/2 (the paper's rule)."""
        edges = [(0, 1)]
        degrees = {(0, 1): 6}
        selection = select_active_edges(edges, lambda e: 3, degrees)
        assert selection.inactive == ((0, 1),)

    def test_degree_zero_edge_with_one_color_is_active(self):
        edges = [(0, 1)]
        degrees = {(0, 1): 0}
        selection = select_active_edges(edges, lambda e: 1, degrees)
        assert selection.active == ((0, 1),)

    def test_empty_input(self):
        selection = select_active_edges([], lambda e: 1, {})
        assert selection.active == () and selection.inactive == ()


class TestSlackGuarantee:
    def test_paper_arithmetic(self):
        """Active edge: |L| > deg/2, class degree <= deg/(2β)
        implies |L| > β * class_degree."""
        beta = 3
        instance_degree = 12
        class_degree = instance_degree // (2 * beta)  # 2
        list_size = instance_degree // 2 + 1  # 7 > 6 = β * 2
        assert active_slack_guarantee(
            list_size, instance_degree, class_degree, beta
        )

    def test_detects_violation(self):
        assert not active_slack_guarantee(4, 12, 2, 3)  # 4 <= 6


class TestSlackLoopStats:
    def test_halving_detection(self):
        stats = SlackLoopStats(dbar_trajectory=[64, 30, 14, 6])
        assert stats.halved_everywhere()

    def test_non_halving_detected(self):
        stats = SlackLoopStats(dbar_trajectory=[64, 40])
        assert not stats.halved_everywhere()

    def test_tiny_degrees_allowed(self):
        # <= 1 passes regardless (integer floors at the bottom)
        stats = SlackLoopStats(dbar_trajectory=[2, 1])
        assert stats.halved_everywhere()

    def test_empty_trajectory(self):
        assert SlackLoopStats().halved_everywhere()
