"""The cluster contract: sharded == serial, byte for byte, and resumable.

Pins the two acceptance claims of the subsystem:

* ``run_sharded`` over a 26-spec mixed batch (plain algorithms plus
  ``crash_stop`` and ``lossy_links`` scenarios, duplicates included)
  drained by **2 concurrent worker subprocesses** returns results
  byte-identical to serial :func:`repro.api.run_many`;
* killing a worker mid-job (a left-behind lease plus a half-spilled
  shard) and re-running the coordinator completes the job from the
  surviving shard state — finished shard files are reused bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.api import InstanceSpec, RunSpec, ScenarioSpec, run_many
from repro.api.runner import clear_result_cache
from repro.cluster import (
    cache_dir_of,
    ensure_plan,
    job_status,
    merge_results,
    run_sharded,
    work_loop,
)
from repro.cluster.queue import ShardQueue, result_path
from repro.errors import ClusterError
from repro.results import canonical_json


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def mixed_specs() -> list[RunSpec]:
    """28 mixed specs: 3 programs × 2 instances × 4 worlds, +bko20, +dupes."""
    instances = [
        InstanceSpec(family="complete_bipartite", size=3, seed=2),
        InstanceSpec(family="grid", size=3, seed=1),
    ]
    scenarios = [
        None,
        ScenarioSpec(model="crash_stop", seed=5, params={"f": 2}),
        ScenarioSpec(model="lossy_links", seed=5, params={"drop": 0.2}),
        ScenarioSpec(model="bounded_async", seed=5, params={"quota": 6}),
    ]
    specs = [
        RunSpec(instance=instance, algorithm=algorithm, scenario=scenario)
        for instance in instances
        for algorithm in (
            "greedy_sequential", "randomized_luby", "linial_greedy"
        )
        for scenario in scenarios
    ]
    specs += [
        RunSpec(instance=instances[0], algorithm="bko20"),
        RunSpec(instance=instances[1], algorithm="bko20"),
        # Duplicates: merge must fan one shard result over them.
        specs[1],
        specs[2],
    ]
    assert len(specs) >= 24
    return specs


def payloads(results) -> list[str]:
    return [canonical_json(result.to_dict()) for result in results]


@pytest.fixture()
def serial_baseline():
    specs = mixed_specs()
    clear_result_cache()
    serial = run_many(specs, cache=False)
    clear_result_cache()
    return specs, serial


class TestAcceptance:
    def test_two_concurrent_workers_byte_identical_to_serial(
        self, tmp_path, serial_baseline
    ):
        # Drive the 2 worker subprocesses explicitly and require that
        # *they* complete the whole job (run_sharded's self-healing
        # in-process drain would mask a broken worker entry point).
        from repro.cluster import spawn_local_worker

        specs, serial = serial_baseline
        job = tmp_path / "job"
        ensure_plan(specs, job, shards=4)
        procs = [spawn_local_worker(job, lease_ttl=60.0) for _ in range(2)]
        for proc in procs:
            proc.wait()
        assert [proc.returncode for proc in procs] == [0, 0]
        status = job_status(job)
        assert status["complete"]
        assert status["shards"] == 4
        merged = run_sharded(
            specs, job, shards=4, local_workers=0, lease_ttl=60.0
        )
        assert payloads(merged) == payloads(serial)

    def test_killed_worker_job_resumes_from_surviving_state(
        self, tmp_path, serial_baseline
    ):
        specs, serial = serial_baseline
        job = tmp_path / "job"
        plan = ensure_plan(specs, job, shards=3)
        clock = FakeClock(0.0)

        # A healthy worker completes every shard except 0, then stops.
        victim_shard = next(
            shard for shard in range(3) if plan.assignment[shard]
        )
        queue = ShardQueue(
            job, worker_id="doomed", lease_ttl=30.0, clock=clock
        )
        assert queue.claim(victim_shard)
        # The doomed worker got through part of its shard before dying:
        # its finished specs sit in the shared job cache...
        victim_fingerprints = plan.assignment[victim_shard]
        partial = [plan.spec_of(f) for f in victim_fingerprints[:2]]
        clear_result_cache()
        run_many(partial, cache=False, cache_dir=cache_dir_of(job))
        # ...and its claim file is left behind, mid-lease (no result).
        assert not queue.is_done(victim_shard)

        # Every other shard finishes normally (the lease is live, so
        # the healthy worker skips the doomed shard).
        summary = work_loop(
            job, worker_id="healthy", lease_ttl=30.0, clock=clock
        )
        assert victim_shard not in summary["completed"]
        assert summary["outstanding"] == [victim_shard]
        survivors = {
            shard: result_path(job, shard).read_bytes()
            for shard in summary["completed"]
        }

        # Re-run the coordinator after the lease went stale: it must
        # reclaim shard 0, finish it, and reuse the surviving shards.
        clock.now = 120.0  # > lease_ttl past the doomed heartbeat
        clear_result_cache()
        merged = run_sharded(
            specs, job, shards=3, local_workers=0,
            lease_ttl=30.0, clock=clock,
        )
        assert payloads(merged) == payloads(serial)
        for shard, frozen in survivors.items():
            assert result_path(job, shard).read_bytes() == frozen
        assert job_status(job, clock=clock)["complete"]


class TestCoordinator:
    def test_in_process_run_matches_serial(self, tmp_path, serial_baseline):
        specs, serial = serial_baseline
        merged = run_sharded(specs, tmp_path / "job", shards=5)
        assert payloads(merged) == payloads(serial)

    def test_rerun_on_complete_job_replays_without_workers(
        self, tmp_path, serial_baseline
    ):
        specs, serial = serial_baseline
        job = tmp_path / "job"
        run_sharded(specs, job, shards=3)
        frozen = {
            shard: result_path(job, shard).read_bytes() for shard in range(3)
        }
        clear_result_cache()
        merged = run_sharded(specs, job, shards=3)
        assert payloads(merged) == payloads(serial)
        for shard in range(3):
            assert result_path(job, shard).read_bytes() == frozen[shard]

    def test_duplicate_specs_get_independent_copies(self, tmp_path):
        spec = RunSpec(
            instance=InstanceSpec(family="complete_bipartite", size=3, seed=2),
            algorithm="greedy_sequential",
        )
        merged = run_sharded([spec, spec], tmp_path / "job", shards=2)
        assert merged[0] is not merged[1]
        assert merged[0] == merged[1]
        merged[1].coloring.clear()
        assert merged[0].coloring  # first occurrence untouched

    def test_merge_of_incomplete_job_names_missing_shards(
        self, tmp_path
    ):
        specs = [
            RunSpec(
                instance=InstanceSpec(
                    family="complete_bipartite", size=3, seed=s
                ),
                algorithm="greedy_sequential",
            )
            for s in (1, 2, 3)
        ]
        ensure_plan(specs, tmp_path / "job", shards=2)
        with pytest.raises(ClusterError, match="incomplete"):
            merge_results(specs, tmp_path / "job")

    def test_corrupt_shard_result_counts_as_not_done_and_reruns(
        self, tmp_path
    ):
        specs = [
            RunSpec(
                instance=InstanceSpec(
                    family="complete_bipartite", size=3, seed=s
                ),
                algorithm="greedy_sequential",
            )
            for s in (1, 2)
        ]
        job = tmp_path / "job"
        clear_result_cache()
        expected = payloads(run_sharded(specs, job, shards=1))
        # Tamper with the sealed result: the merge must not trust it...
        path = result_path(job, 0)
        path.write_text(path.read_text().replace('"rounds": ', '"rounds":9'))
        with pytest.raises(ClusterError, match="incomplete"):
            merge_results(specs, job)
        # ...and a re-run heals the job (cache replays the specs).
        clear_result_cache()
        assert payloads(run_sharded(specs, job, shards=1)) == expected

    def test_scenario_sweep_sharded_path_matches_direct(self, tmp_path):
        from repro.analysis.harness import run_scenario_sweep

        instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
        specs = [
            RunSpec(instance=instance, algorithm="greedy_sequential"),
            RunSpec(
                instance=instance,
                algorithm="greedy_sequential",
                scenario=ScenarioSpec(
                    model="lossy_links", seed=3, params={"drop": 0.2}
                ),
            ),
        ]
        clear_result_cache()
        direct = run_scenario_sweep(specs, cache=False)
        clear_result_cache()
        sharded = run_scenario_sweep(
            specs, job_dir=tmp_path / "job", shards=2
        )
        assert [row.values for row in sharded.rows] == [
            row.values for row in direct.rows
        ]


class TestShardTimingGuards:
    """Degenerate timing sidecars must never corrupt ``status`` output.

    The sidecar rounds wall-clock to microseconds, so a sub-millisecond
    shard legitimately records ``wall_clock_s == 0.0`` — the derived
    rate must come out ``None`` (unknowable), not ``ZeroDivisionError``
    or ``Infinity``; hand-edited/corrupt sidecars with non-finite walls
    must be ignored outright.
    """

    @staticmethod
    def _done_job(tmp_path):
        from repro.cluster import load_plan

        spec = RunSpec(
            instance=InstanceSpec(family="complete_bipartite", size=3, seed=2),
            algorithm="greedy_sequential",
        )
        job = tmp_path / "job"
        clear_result_cache()
        run_sharded([spec], job, shards=1)
        return job, load_plan(job).plan_fingerprint()

    def _stamp_timing(self, job, plan_fingerprint, wall):
        from repro.cluster import timing_path
        from repro.cluster.worker import record_shard_timing

        timing_path(job, 0).unlink(missing_ok=True)
        record_shard_timing(
            job,
            0,
            plan_fingerprint=plan_fingerprint,
            worker="w-test",
            started_at=1.0,
            wall_clock_s=wall,
            specs_total=1,
            specs_executed=1,
        )

    def test_zero_wall_clock_reports_rate_unknown_not_infinite(
        self, tmp_path
    ):
        import json

        from repro.__main__ import _shard_timing_table

        job, plan_fingerprint = self._done_job(tmp_path)
        self._stamp_timing(job, plan_fingerprint, 0.0)
        status = job_status(job)
        entry = status["timing"]["0"]
        assert entry["wall_clock_s"] == 0.0
        assert entry["specs_per_s"] is None
        # The whole snapshot must stay strict-JSON (no Infinity/NaN)...
        json.dumps(status, allow_nan=False)
        # ...and the CLI table renders the unknowable rate as "-".
        table = _shard_timing_table(status)
        assert "0.000" in table and "w-test" in table

    @pytest.mark.parametrize("wall", [float("inf"), float("nan"), -1.0])
    def test_non_finite_or_negative_sidecar_is_ignored(self, tmp_path, wall):
        import json

        from repro.__main__ import _shard_timing_table
        from repro.cluster import load_shard_timing

        job, plan_fingerprint = self._done_job(tmp_path)
        self._stamp_timing(job, plan_fingerprint, wall)
        assert (
            load_shard_timing(job, 0, plan_fingerprint=plan_fingerprint)
            is None
        )
        status = job_status(job)
        assert "0" not in status["timing"]  # silent, never lying
        json.dumps(status, allow_nan=False)
        _shard_timing_table(status)
