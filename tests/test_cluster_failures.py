"""Cluster failure domains: dead letters, corrupt-state recovery, reaping.

Pins the robustness contracts of the cluster layer:

* captured spec failures are quarantined as sealed dead letters in the
  job's ``failed/`` directory, reported by ``job_status``, merged into
  their batch slots, and **reused on resume** (a poison spec is never
  re-looped);
* every kind of corrupt job state — a torn ``manifest.json``, a
  truncated shard result, a garbage lease heartbeat, a tampered dead
  letter — is treated as absent and recovered by re-running, never
  half-trusted and never wedging the job;
* the coordinator's bounded wait reaps wedged worker subprocesses
  (terminate → kill) and records the events.
"""

from __future__ import annotations

import subprocess
import sys
import time

import pytest

from repro.api import FailurePolicy, InstanceSpec, RunSpec, run_many
from repro.api import runner as runner_module
from repro.api.runner import clear_result_cache
from repro.cluster import (
    dead_letter_path,
    ensure_plan,
    job_status,
    load_dead_letter,
    load_dead_letters,
    load_plan,
    load_worker_events,
    merge_results,
    record_worker_events,
    run_sharded,
    wait_for_workers,
)
from repro.cluster.planner import manifest_path
from repro.cluster.queue import ShardQueue, claim_path, result_path
from repro.errors import ClusterError, InjectedFault
from repro.results import canonical_json


def small_specs() -> list[RunSpec]:
    instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
    return [
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(instance=instance, algorithm="bko20"),
        RunSpec(instance=instance, algorithm="linial_greedy"),
    ]


CAPTURE = FailurePolicy(on_error="capture")


@pytest.fixture(autouse=True)
def clean_state():
    clear_result_cache()
    assert runner_module._FAULT_HOOK is None
    yield
    runner_module._FAULT_HOOK = None
    clear_result_cache()


def poison(fingerprint: str):
    def hook(fp: str, attempt: int) -> None:
        if fp == fingerprint:
            raise InjectedFault(f"poisoned {fp[:12]}")

    return hook


class TestDeadLetters:
    def test_poison_spec_is_quarantined_and_merged(self, tmp_path):
        specs = small_specs()
        target = specs[1].fingerprint()
        runner_module._FAULT_HOOK = poison(target)
        merged = run_sharded(
            specs, tmp_path, shards=2, on_error=CAPTURE
        )
        assert merged[1].is_failure()
        assert merged[1].error_type == "InjectedFault"
        assert not merged[0].is_failure() and not merged[2].is_failure()
        assert dead_letter_path(tmp_path, target).exists()
        plan_fingerprint = load_plan(tmp_path).plan_fingerprint()
        letters = load_dead_letters(
            tmp_path, plan_fingerprint=plan_fingerprint
        )
        assert set(letters) == {target}
        assert letters[target].traceback_text  # full traceback preserved
        status = job_status(tmp_path)
        assert set(status["failed"]) == {target}
        assert status["failed"][target]["error_type"] == "InjectedFault"

    def test_dead_letter_reused_on_resume_without_rerunning(self, tmp_path):
        specs = small_specs()
        target = specs[1].fingerprint()
        runner_module._FAULT_HOOK = poison(target)
        first = run_sharded(specs, tmp_path, shards=2, on_error=CAPTURE)
        # Wipe the shard results but keep the quarantine: the resumed
        # job must reuse the dead letter even though the fault is gone.
        runner_module._FAULT_HOOK = None
        clear_result_cache()
        plan = load_plan(tmp_path)
        for shard in range(plan.shards):
            result_path(tmp_path, shard).unlink()
        second = run_sharded(specs, tmp_path, shards=2, on_error=CAPTURE)
        assert second[1].is_failure()
        assert canonical_json(second[1].to_dict()) == canonical_json(
            first[1].to_dict()
        )

    def test_tampered_dead_letter_treated_as_absent(self, tmp_path):
        specs = small_specs()
        target = specs[1].fingerprint()
        runner_module._FAULT_HOOK = poison(target)
        run_sharded(specs, tmp_path, shards=2, on_error=CAPTURE)
        plan_fingerprint = load_plan(tmp_path).plan_fingerprint()
        path = dead_letter_path(tmp_path, target)
        path.write_text(path.read_text()[:-40])
        assert (
            load_dead_letter(
                tmp_path, target, plan_fingerprint=plan_fingerprint
            )
            is None
        )
        # And recovery: with the fault gone and results wiped, the spec
        # re-runs cleanly instead of trusting the torn quarantine.
        runner_module._FAULT_HOOK = None
        clear_result_cache()
        for shard in range(2):
            result_path(tmp_path, shard).unlink()
        merged = run_sharded(specs, tmp_path, shards=2, on_error=CAPTURE)
        assert not any(result.is_failure() for result in merged)

    def test_failure_slots_match_serial_capture(self, tmp_path):
        specs = small_specs() + [small_specs()[1]]  # duplicate the poison
        target = specs[1].fingerprint()
        runner_module._FAULT_HOOK = poison(target)
        serial = run_many(specs, cache=False, on_error=CAPTURE)
        clear_result_cache()
        sharded = run_sharded(specs, tmp_path, shards=2, on_error=CAPTURE)
        assert [canonical_json(r.to_dict()) for r in sharded] == [
            canonical_json(r.to_dict()) for r in serial
        ]


class TestCorruptStateRecovery:
    def test_torn_manifest_is_replanned_on_adoption(self, tmp_path):
        specs = small_specs()
        ensure_plan(specs, tmp_path, shards=2)
        original = load_plan(tmp_path).plan_fingerprint()
        path = manifest_path(tmp_path)
        path.write_text(path.read_text()[: 50])  # torn mid-write
        with pytest.raises(ClusterError):
            load_plan(tmp_path)
        adopted = ensure_plan(specs, tmp_path, shards=2)
        assert adopted.plan_fingerprint() == original
        assert load_plan(tmp_path).plan_fingerprint() == original

    def test_valid_foreign_manifest_still_refuses(self, tmp_path):
        ensure_plan(small_specs(), tmp_path, shards=2)
        other = [small_specs()[0]]
        with pytest.raises(ClusterError, match="refusing to mix"):
            ensure_plan(other, tmp_path, shards=2)

    def test_truncated_shard_result_is_rerun(self, tmp_path):
        specs = small_specs()
        baseline = run_many(specs, cache=False)
        clear_result_cache()
        run_sharded(specs, tmp_path, shards=2)
        # Truncate one published shard result: merge must refuse it,
        # and a re-run must heal it rather than trust it.
        victim = result_path(tmp_path, 0)
        victim.write_text(victim.read_text()[:30])
        with pytest.raises(ClusterError, match="incomplete"):
            merge_results(specs, tmp_path)
        clear_result_cache()
        merged = run_sharded(specs, tmp_path, shards=2)
        assert [canonical_json(r.to_dict()) for r in merged] == [
            canonical_json(r.to_dict()) for r in baseline
        ]

    def test_garbage_heartbeat_counts_as_stale(self, tmp_path):
        queue = ShardQueue(tmp_path, worker_id="t:1", lease_ttl=60.0)
        assert queue.is_stale({"worker": "x:9", "heartbeat_at": "garbage"})
        assert queue.is_stale({"worker": "x:9"})
        path = claim_path(tmp_path, 0)
        path.parent.mkdir(parents=True)
        path.write_text('{"worker": "x:9", "heartbeat_at": "garbage"}')
        assert queue.claimable(0)
        assert queue.claim(0)


class TestWorkerReaping:
    def test_hung_worker_is_escalated(self, tmp_path):
        proc = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(300)"]
        )
        started = time.monotonic()
        events = wait_for_workers(
            [proc], tmp_path, lease_ttl=0.5, grace_s=1.0, poll_s=0.05
        )
        assert time.monotonic() - started < 30.0
        assert proc.poll() is not None
        assert len(events) == 1
        assert events[0]["event"] == "worker_hung"
        assert events[0]["action"] in ("terminated", "killed")
        assert events[0]["pid"] == proc.pid

    def test_nonzero_exit_is_recorded(self, tmp_path):
        proc = subprocess.Popen([sys.executable, "-c", "raise SystemExit(3)"])
        events = wait_for_workers(
            [proc], tmp_path, lease_ttl=0.5, grace_s=5.0, poll_s=0.05
        )
        assert events == [
            {"event": "worker_exit_nonzero", "pid": proc.pid, "returncode": 3}
        ]

    def test_clean_exit_yields_no_events(self, tmp_path):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        assert (
            wait_for_workers(
                [proc], tmp_path, lease_ttl=0.5, grace_s=5.0, poll_s=0.05
            )
            == []
        )

    def test_events_round_trip_and_surface_in_status(self, tmp_path):
        ensure_plan(small_specs(), tmp_path, shards=2)
        record_worker_events(
            tmp_path, [{"event": "worker_hung", "pid": 7, "action": "killed"}]
        )
        record_worker_events(
            tmp_path,
            [{"event": "worker_exit_nonzero", "pid": 8, "returncode": 86}],
        )
        events = load_worker_events(tmp_path)
        assert [event["pid"] for event in events] == [7, 8]
        assert job_status(tmp_path)["worker_events"] == events
