"""The run ledger: complete accounting that never perturbs results.

The contracts pinned here (see :mod:`repro.telemetry.ledger`):

1. every resolution writes one record — executed, cache replay
   (layer-labeled), or captured failure — with the documented shape;
2. the *deterministic core* of a batch's records is identical across
   serial, process-pool, and sharded execution of the same specs;
3. the ledger is observational: results with the ledger on are
   byte-identical to results with it off, cross-engine included;
4. writes are best-effort: an unwritable ledger directory records
   nothing and fails nothing.
"""

from __future__ import annotations

import json

import pytest

import repro.api.runner as runner_module
from repro.api import FailurePolicy, InstanceSpec, RunSpec, ScenarioSpec, run, run_many
from repro.api.runner import clear_result_cache
from repro.cluster import run_sharded
from repro.errors import InjectedFault
from repro.model.scheduler import numpy_available
from repro.results import canonical_json
from repro.telemetry.ledger import (
    LEDGER_FORMAT,
    RUN_DISPOSITIONS,
    active_ledger_dir,
    deterministic_core,
    ledger_context,
    read_ledger_rows,
    worker_identity,
)


def batch() -> list[RunSpec]:
    instance = InstanceSpec(family="complete_bipartite", size=3, seed=4)
    return [
        RunSpec(instance=instance, algorithm="bko20"),
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="lossy_links", seed=3, params={"drop": 0.2}),
        ),
        # Duplicate: coalesces onto the first occurrence's execution,
        # so the ledger records it once, not twice.
        RunSpec(instance=instance, algorithm="bko20"),
    ]


@pytest.fixture(autouse=True)
def clean_state():
    clear_result_cache()
    assert runner_module._FAULT_HOOK is None
    yield
    runner_module._FAULT_HOOK = None
    clear_result_cache()


def run_rows(directory) -> list[dict]:
    return [
        row for row in read_ledger_rows(directory) if row.get("kind") == "run"
    ]


class TestRecordShape:
    def test_executed_record_carries_the_documented_fields(self, tmp_path):
        spec = batch()[0]
        result = run(spec, cache=False, ledger_dir=tmp_path / "ledger")
        rows = run_rows(tmp_path / "ledger")
        assert len(rows) == 1
        row = rows[0]
        assert row["format"] == LEDGER_FORMAT
        assert row["fingerprint"] == spec.fingerprint()
        assert row["algorithm"] == "bko20"
        assert row["instance"] == spec.instance.label()
        assert row["scenario"] is None
        assert row["disposition"] == "executed"
        assert row["attempts"] == 1
        assert row["result_fingerprint"] == result.result_fingerprint()
        assert row["rounds"] == result.rounds
        assert row["error_type"] is None
        observed = row["observed"]
        assert observed["wall_clock_s"] >= 0.0
        assert observed["worker"] == worker_identity()
        assert observed["environment"]["python"]
        assert isinstance(observed["unix_ts"], float)

    def test_scenario_and_message_fields(self, tmp_path):
        spec = batch()[2]
        result = run(spec, cache=False, ledger_dir=tmp_path)
        row = run_rows(tmp_path)[0]
        assert row["scenario"] == spec.scenario.label()
        assert row["messages"] == result.details["messages_delivered"]

    def test_cache_layers_are_labeled(self, tmp_path):
        spec = batch()[1]
        ledger = tmp_path / "ledger"
        run(spec, cache_dir=tmp_path / "cache", ledger_dir=ledger)
        # Memory layer answers within the process...
        run(spec, cache_dir=tmp_path / "cache", ledger_dir=ledger)
        # ...and the disk layer answers once the memory layer is gone.
        clear_result_cache()
        run(spec, cache_dir=tmp_path / "cache", ledger_dir=ledger)
        dispositions = [row["disposition"] for row in run_rows(ledger)]
        assert dispositions == ["executed", "cache_memory", "cache_disk"]
        for row in run_rows(ledger)[1:]:
            assert row["attempts"] == 0
        assert set(dispositions) <= set(RUN_DISPOSITIONS)

    def test_captured_failure_records_attempts_and_error_type(self, tmp_path):
        spec = batch()[0]
        fingerprint = spec.fingerprint()

        def hook(fp: str, attempt: int) -> None:
            if fp == fingerprint:
                raise InjectedFault(f"poisoned {fp[:12]}")

        runner_module._FAULT_HOOK = hook
        policy = FailurePolicy(on_error="capture", retries=2)
        result = run(spec, cache=False, on_error=policy, ledger_dir=tmp_path)
        assert result.is_failure()
        row = run_rows(tmp_path)[0]
        assert row["disposition"] == "failed"
        assert row["attempts"] == policy.attempts == 3
        assert row["error_type"] == "InjectedFault"
        assert row["result_fingerprint"] == result.result_fingerprint()

    def test_recovered_flaky_records_the_attempt_that_succeeded(self, tmp_path):
        spec = batch()[0]
        fingerprint = spec.fingerprint()

        def hook(fp: str, attempt: int) -> None:
            if fp == fingerprint and attempt == 1:
                raise InjectedFault("doomed first attempt")

        runner_module._FAULT_HOOK = hook
        result = run(
            spec,
            cache=False,
            on_error=FailurePolicy(on_error="capture", retries=1),
            ledger_dir=tmp_path,
        )
        assert not result.is_failure()
        row = run_rows(tmp_path)[0]
        assert row["disposition"] == "executed"
        assert row["attempts"] == 2


class TestAmbientSeam:
    def test_ledger_context_installs_and_restores(self, tmp_path):
        assert active_ledger_dir() is None
        with ledger_context(tmp_path) as installed:
            assert installed == str(tmp_path)
            assert active_ledger_dir() == str(tmp_path)
            run(batch()[1], cache=False)
        assert active_ledger_dir() is None
        assert len(run_rows(tmp_path)) == 1

    def test_none_context_is_a_passthrough(self, tmp_path):
        with ledger_context(tmp_path):
            with ledger_context(None) as ambient:
                assert ambient == str(tmp_path)
                assert active_ledger_dir() == str(tmp_path)

    def test_explicit_ledger_dir_wins_over_ambient(self, tmp_path):
        ambient = tmp_path / "ambient"
        explicit = tmp_path / "explicit"
        with ledger_context(ambient):
            run(batch()[1], cache=False, ledger_dir=explicit)
        assert run_rows(explicit) and not run_rows(ambient)


class TestDeterminism:
    """Contract 2: core rows are identical across execution modes."""

    def core_set(self, directory) -> set[str]:
        return {
            canonical_json(deterministic_core(row))
            for row in run_rows(directory)
        }

    def test_serial_pool_sharded_write_the_same_core_rows(self, tmp_path):
        specs = batch()
        serial_dir = tmp_path / "serial"
        pool_dir = tmp_path / "pool"
        job_dir = tmp_path / "job"

        serial = run_many(specs, cache=False, ledger_dir=serial_dir)
        clear_result_cache()
        pooled = run_many(specs, cache=False, parallel=2, ledger_dir=pool_dir)
        clear_result_cache()
        sharded = run_sharded(specs, job_dir, shards=2, local_workers=0)

        assert [canonical_json(r.to_dict()) for r in serial] == [
            canonical_json(r.to_dict()) for r in pooled
        ] == [canonical_json(r.to_dict()) for r in sharded]

        serial_core = self.core_set(serial_dir)
        assert len(serial_core) == 3  # distinct specs, duplicate coalesced
        assert serial_core == self.core_set(pool_dir)
        assert serial_core == self.core_set(job_dir / "ledger")
        for directory in (serial_dir, pool_dir, job_dir / "ledger"):
            assert all(
                row["disposition"] == "executed" for row in run_rows(directory)
            )

    def test_cluster_workers_default_the_ledger_on(self, tmp_path):
        specs = batch()[:2]
        run_sharded(specs, tmp_path / "job", shards=2, local_workers=0)
        rows = run_rows(tmp_path / "job" / "ledger")
        assert {row["fingerprint"] for row in rows} == {
            spec.fingerprint() for spec in specs
        }


class TestObservationalOnly:
    """Contract 3: the ledger never perturbs result bytes."""

    def test_results_identical_with_ledger_on_and_off(self, tmp_path):
        specs = batch()
        with_ledger = run_many(specs, cache=False, ledger_dir=tmp_path)
        clear_result_cache()
        without = run_many(specs, cache=False)
        assert [canonical_json(r.to_dict()) for r in with_ledger] == [
            canonical_json(r.to_dict()) for r in without
        ]

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_cross_engine_results_identical_with_ledger_on(self, tmp_path):
        specs = batch()
        numpy_side = run_many(
            specs, cache=False, engine="numpy", ledger_dir=tmp_path / "np"
        )
        clear_result_cache()
        list_side = run_many(specs, cache=False, engine="list")
        assert [canonical_json(r.to_dict()) for r in numpy_side] == [
            canonical_json(r.to_dict()) for r in list_side
        ]
        engines = {
            row["observed"]["engine"] for row in run_rows(tmp_path / "np")
        }
        assert engines == {"numpy"}
        # The engine lives in `observed`, never in the core.
        for row in run_rows(tmp_path / "np"):
            assert "engine" not in deterministic_core(row)

    def test_ledger_rows_never_enter_sealed_results(self, tmp_path):
        spec = batch()[0]
        run(spec, cache_dir=tmp_path / "cache", ledger_dir=tmp_path / "ledger")
        sealed = list((tmp_path / "cache").glob("*.json"))
        assert sealed
        for path in sealed:
            text = path.read_text()
            # No telemetry-record fields leak into sealed files ("ledger"
            # alone would false-positive on the solver's round ledger).
            assert '"disposition"' not in text
            assert '"observed"' not in text


class TestBestEffort:
    """Contract 4: an unwritable ledger is silence, not failure."""

    def test_unwritable_ledger_dir_is_swallowed(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the directory should be")
        result = run(batch()[1], cache=False, ledger_dir=blocker / "ledger")
        assert not result.is_failure()

    def test_torn_lines_are_skipped_on_read(self, tmp_path):
        run(batch()[1], cache=False, ledger_dir=tmp_path)
        path = next(tmp_path.glob("*.jsonl"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": \n')
            handle.write("not json at all\n")
        rows = run_rows(tmp_path)
        assert len(rows) == 1

    def test_missing_directory_reads_empty(self, tmp_path):
        assert read_ledger_rows(tmp_path / "never-written") == []

    def test_rows_are_json_lines_sorted_keys(self, tmp_path):
        run(batch()[1], cache=False, ledger_dir=tmp_path)
        path = next(tmp_path.glob("*.jsonl"))
        line = path.read_text().strip()
        row = json.loads(line)
        assert line == json.dumps(row, sort_keys=True, default=repr)
