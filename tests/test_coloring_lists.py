"""Tests for list assignments and the P(Δ̄, S, C) slack bookkeeping."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError, ParameterError
from repro.coloring.lists import (
    ListAssignment,
    deg_plus_one_lists,
    lists_from_mapping,
    uniform_lists,
)
from repro.coloring.palette import Palette
from repro.graphs.edges import edge_set
from repro.graphs.generators import random_regular
from repro.graphs.line_graph import edge_degree


class TestListAssignment:
    def test_rejects_colors_outside_palette(self):
        with pytest.raises(InvalidInstanceError):
            ListAssignment({(0, 1): frozenset({99})}, Palette.of_size(5))

    def test_list_of_unknown_edge_raises(self):
        assignment = ListAssignment({(0, 1): frozenset({1})}, Palette.of_size(5))
        with pytest.raises(InvalidInstanceError):
            assignment.list_of((1, 2))

    def test_restrict_to_edges(self):
        assignment = ListAssignment(
            {(0, 1): frozenset({1}), (1, 2): frozenset({2})}, Palette.of_size(5)
        )
        restricted = assignment.restrict_to_edges([(0, 1)])
        assert (0, 1) in restricted
        assert (1, 2) not in restricted

    def test_restrict_missing_edge_raises(self):
        assignment = ListAssignment({(0, 1): frozenset({1})}, Palette.of_size(5))
        with pytest.raises(InvalidInstanceError):
            assignment.restrict_to_edges([(5, 6)])

    def test_intersect_with_subspace(self):
        assignment = ListAssignment(
            {(0, 1): frozenset({1, 2, 3, 4})}, Palette.of_size(5)
        )
        narrowed = assignment.intersect_with(Palette((2, 3)))
        assert narrowed.list_of((0, 1)) == frozenset({2, 3})


class TestRealizedSlack:
    def test_uniform_lists_on_cycle(self):
        g = nx.cycle_graph(6)  # every edge degree 2, palette 2*2-1 = 3
        lists = uniform_lists(g, Palette.of_size(3))
        assert lists.realized_slack(g) == pytest.approx(1.5)

    def test_degree_zero_edges_are_skipped(self):
        g = nx.Graph([(0, 1)])
        lists = uniform_lists(g, Palette.of_size(1))
        assert lists.realized_slack(g) == float("inf")

    def test_validate_deg_plus_one_accepts_minimum(self):
        g = nx.path_graph(4)
        lists = deg_plus_one_lists(g)
        lists.validate_deg_plus_one(g)  # must not raise

    def test_validate_deg_plus_one_rejects_short_list(self):
        g = nx.path_graph(3)
        bad = ListAssignment(
            {(0, 1): frozenset({1}), (1, 2): frozenset({1})}, Palette.of_size(3)
        )
        with pytest.raises(InvalidInstanceError):
            bad.validate_deg_plus_one(g)


class TestDegPlusOneLists:
    def test_sizes_match_edge_degrees(self):
        g = nx.star_graph(4)
        lists = deg_plus_one_lists(g)
        for edge in edge_set(g):
            assert len(lists.list_of(edge)) == edge_degree(g, edge) + 1

    def test_extra_increases_sizes(self):
        g = nx.cycle_graph(5)
        lists = deg_plus_one_lists(g, palette=Palette.of_size(8), extra=2)
        for edge in edge_set(g):
            assert len(lists.list_of(edge)) == edge_degree(g, edge) + 3

    def test_seeded_sampling_stays_in_palette(self):
        g = random_regular(4, 12, seed=7)
        lists = deg_plus_one_lists(g, seed=3)
        palette = lists.palette.as_set
        for edge in edge_set(g):
            assert lists.list_of(edge) <= palette

    def test_seeded_sampling_reproducible(self):
        g = nx.cycle_graph(8)
        a = deg_plus_one_lists(g, seed=5)
        b = deg_plus_one_lists(g, seed=5)
        assert a.lists == b.lists

    def test_palette_too_small_raises(self):
        g = nx.star_graph(5)  # max edge degree 4, needs 5 colors
        with pytest.raises(ParameterError):
            deg_plus_one_lists(g, palette=Palette.of_size(3))

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=2, max_value=12))
    def test_default_palette_always_suffices(self, extra_unused, n):
        g = nx.complete_graph(n)
        lists = deg_plus_one_lists(g)
        lists.validate_deg_plus_one(g)


class TestListsFromMapping:
    def test_canonicalises_keys(self):
        g = nx.path_graph(3)
        lists = lists_from_mapping(
            g, {(1, 0): [1, 2], (2, 1): [2, 3]}, Palette.of_size(3)
        )
        assert lists.list_of((0, 1)) == frozenset({1, 2})

    def test_missing_edge_raises(self):
        g = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            lists_from_mapping(g, {(0, 1): [1]}, Palette.of_size(3))
