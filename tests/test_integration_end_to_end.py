"""Cross-module integration tests: the full pipeline on one substrate.

These tests exercise the exact composition the paper describes —
initial coloring -> Lemma 4.2 -> Lemma 4.3 -> base cases — and verify
the paper's *global* claims on the observable execution, not just unit
behaviour.
"""

import networkx as nx
import pytest

from repro.analysis.theory import lemma42_invocation_bound, theorem41_depth
from repro.coloring.lists import deg_plus_one_lists
from repro.coloring.verify import (
    check_list_edge_coloring,
    check_palette_bound,
    check_proper_edge_coloring,
)
from repro.core.params import fixed_policy, scaled_policy
from repro.core.solver import solve_edge_coloring, solve_list_edge_coloring
from repro.graphs.generators import (
    blow_up_cycle,
    complete_bipartite,
    grid_graph,
    random_regular,
    torus_graph,
)
from repro.utils.logstar import log_star


MACHINERY_POLICY = fixed_policy(
    2, 4, base_degree_threshold=4, base_palette_threshold=6
)


class TestFullPipeline:
    def test_lemma43_engages_and_colors_correctly(self):
        """The color-space reduction must actually run (not just fall
        back) and still validate.  Needs a dense structured instance:
        at simulation scale the defective coloring's *measured* defect
        is far below its worst-case bound, so slack-β classes only
        exceed the base threshold on graphs like K_{s,s} with s >= 25
        (recorded as a finding in EXPERIMENTS.md)."""
        g = complete_bipartite(25, 25)
        result = solve_edge_coloring(g, policy=MACHINERY_POLICY, seed=4)
        check_proper_edge_coloring(g, result.coloring)
        check_palette_bound(result.coloring, 49)
        assert result.stats.get("lem43/reductions", 0) >= 1
        assert result.stats.get("max_depth_seen", 0) >= 1

    def test_lemma42_invocation_count_within_bound(self):
        """Lemma 4.2: O(β² log Δ̄) slack-β instances per invocation."""
        g = complete_bipartite(12, 12)
        result = solve_edge_coloring(g, policy=MACHINERY_POLICY, seed=2)
        betas = result.stats["betas"]
        trajectory = result.stats["dbar_trajectory"]
        assert betas and trajectory
        # Aggregate bound over all outer iterations.
        allowed = sum(
            lemma42_invocation_bound(beta, dbar, constant=8.0)
            for beta, dbar in zip(betas, trajectory)
        )
        assert result.stats["relaxed_invocations"] <= allowed

    def test_degree_halving_claim(self):
        """Lemma 4.2's running-time argument: Δ̄ at least halves per
        outer iteration (+1 slop for integer floors)."""
        g = random_regular(10, 44, seed=6)
        result = solve_edge_coloring(g, seed=2)
        trajectory = result.stats["dbar_trajectory"]
        for earlier, later in zip(trajectory, trajectory[1:]):
            assert later <= earlier / 2 + 1

    def test_depth_is_loglog_scale(self):
        """Theorem 4.1: recursion depth O(log log Δ̄)."""
        g = complete_bipartite(25, 25)
        result = solve_edge_coloring(g, policy=MACHINERY_POLICY, seed=4)
        dbar = 48
        # generous constant: depth counts both lemma nestings
        assert result.stats.get("max_depth_seen", 0) <= 6 * (
            theorem41_depth(dbar) + 2
        )

    def test_no_eq2_violations_in_theory_regime(self):
        g = complete_bipartite(25, 25)
        result = solve_edge_coloring(g, policy=MACHINERY_POLICY, seed=4)
        assert result.stats.get("lem43/reductions", 0) >= 1
        assert result.stats.get("lem43/eq2_violations", 0) == 0


class TestConstantDegreeFamilies:
    """On constant-Δ families the whole algorithm must behave like its
    base case: rounds dominated by O(log* n) + O(1)."""

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_torus_rounds_flat_in_n(self, n):
        g = torus_graph(max(3, int(n**0.5)), max(3, int(n**0.5)))
        result = solve_edge_coloring(g, seed=1)
        check_proper_edge_coloring(g, result.coloring)
        # Δ̄ = 6 on tori: bounded classes + log* n
        assert result.rounds <= 600 + 50 * log_star(n**4)

    def test_grid_list_instance(self):
        g = grid_graph(8, 8)
        lists = deg_plus_one_lists(g, seed=5)
        result = solve_list_edge_coloring(g, lists, seed=2)
        check_list_edge_coloring(g, lists, result.coloring)


class TestStressShapes:
    def test_blow_up_cycle(self):
        g = blow_up_cycle(6, 4)  # 8-regular, locally dense line graph
        result = solve_edge_coloring(g, policy=MACHINERY_POLICY, seed=3)
        check_proper_edge_coloring(g, result.coloring)

    def test_list_instance_with_machinery(self):
        from repro.coloring.palette import Palette

        g = random_regular(8, 30, seed=11)
        lists = deg_plus_one_lists(
            g, palette=Palette.of_size(20), seed=7, extra=2
        )
        result = solve_list_edge_coloring(
            g, lists, policy=MACHINERY_POLICY, seed=5
        )
        check_list_edge_coloring(g, lists, result.coloring)

    def test_ledger_breakdown_mentions_lemmas(self):
        g = random_regular(8, 30, seed=3)
        result = solve_edge_coloring(g, policy=MACHINERY_POLICY, seed=4)
        text = result.ledger.breakdown(max_depth=4)
        assert "Lemma 4.2" in text
        assert "initial Linial" in text
