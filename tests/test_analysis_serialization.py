"""Tests for JSON serialization of results and ledgers."""

import json

import pytest

from repro.analysis.serialization import (
    edge_to_token,
    ledger_to_dict,
    read_coloring_from_result,
    solve_result_to_dict,
    token_to_edge,
    write_result,
)
from repro.core.ledger import RoundLedger
from repro.core.solver import solve_edge_coloring
from repro.errors import InvalidInstanceError
from repro.graphs.generators import complete_bipartite


class TestEdgeTokens:
    def test_roundtrip_integers(self):
        assert token_to_edge(edge_to_token((3, 7))) == (3, 7)

    def test_roundtrip_strings(self):
        assert token_to_edge(edge_to_token(("a", "b"))) == ("a", "b")

    def test_rejects_malformed(self):
        with pytest.raises(InvalidInstanceError):
            token_to_edge("nodashes")


class TestLedgerSerialization:
    def test_tree_structure_preserved(self):
        ledger = RoundLedger()
        ledger.charge("init", 3)
        with ledger.parallel("subspaces"):
            ledger.charge("a", 2)
            ledger.charge("b", 7)
        ledger.bump("fallbacks", 2)
        payload = ledger_to_dict(ledger)
        assert payload["total_rounds"] == 10
        assert payload["counters"] == {"fallbacks": 2}
        tree = payload["tree"]
        assert tree["mode"] == "seq"
        parallel = tree["children"][1]
        assert parallel["mode"] == "par" and parallel["total"] == 7

    def test_json_safe(self):
        ledger = RoundLedger()
        ledger.charge("x", 1)
        json.dumps(ledger_to_dict(ledger))  # must not raise


class TestSolveResultSerialization:
    def test_roundtrip_through_file(self, tmp_path):
        graph = complete_bipartite(3, 3)
        result = solve_edge_coloring(graph, seed=1)
        path = tmp_path / "run.json"
        write_result(result, path)
        payload = json.loads(path.read_text())
        assert payload["rounds"] == result.rounds
        assert payload["edges"] == 9
        loaded = read_coloring_from_result(path)
        assert loaded == result.coloring

    def test_stats_are_jsonified(self):
        graph = complete_bipartite(4, 4)
        result = solve_edge_coloring(graph, seed=1)
        payload = solve_result_to_dict(result)
        json.dumps(payload)  # whole payload must be JSON-safe
        assert payload["policy"] == result.policy_name
        assert payload["ledger"]["total_rounds"] == result.rounds
