"""The service contract, pinned over real HTTP.

Every test drives a live in-process :class:`~repro.service.app.
ReproService` through an ephemeral-port :class:`http.server.
ThreadingHTTPServer` with nothing but ``urllib`` — the transport a
zero-dependency client actually uses.  The headline pins:

* **Idempotent concurrency** — N threads POSTing the identical spec
  cost exactly one execution (counted at the executor's fault-hook
  seam, with the leader held open until every follower has joined the
  in-flight entry, so the count is deterministic) and N byte-identical
  fingerprinted responses.
* **Strict deserialization** — unknown fields are 400s that *name the
  field*; non-JSON and empty bodies are 400s, never tracebacks.
* **Poison round-trip** — an unrunnable spec is an answer (200,
  ``failed: true``, a serialized :class:`~repro.results.FailedResult`
  that deserializes back), not a 500.
* **Streaming jobs** — a sharded batch streams every result exactly
  once, in batch order, byte-identical to serial ``run_many``; the
  identical resubmission returns the same job untouched.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import InstanceSpec, RunSpec, ScenarioSpec, run_many
from repro.api.runner import clear_result_cache
from repro.results import FailedResult, RunResult, canonical_json
from repro.service import ReproService, make_server

BARRIER_S = 30.0


@pytest.fixture()
def live(tmp_path):
    """A served ReproService on an ephemeral port: ``(service, base_url)``."""
    service = ReproService(tmp_path / "data")
    server = make_server(service)
    host, port = server.server_address[:2]
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    try:
        yield service, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()


def request(method, url, payload=None, *, raw=None):
    """One JSON round-trip; 4xx bodies come back, not raised."""
    data = raw if raw is not None else (
        None if payload is None else json.dumps(payload).encode()
    )
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as err:
        body = err.read()
        return err.code, json.loads(body) if body else {}, dict(err.headers)


def spec_payload(**overrides):
    payload = {
        "instance": {"family": "complete_bipartite", "size": 3, "seed": 2},
        "algorithm": "greedy_sequential",
    }
    payload.update(overrides)
    return payload


class TestIdempotentRuns:
    def test_concurrent_identical_posts_cost_one_execution(self, live):
        from repro.api import runner as runner_module

        service, base = live
        clients = 5
        spec = RunSpec.from_dict(spec_payload())
        target = spec.fingerprint()
        executions = []

        def hook(fingerprint, attempt):
            if fingerprint != target:
                return
            executions.append(attempt)
            # Hold the solve open until every follower has joined, so
            # "exactly one execution" is an exact count, not a race.
            deadline = time.time() + BARRIER_S
            while (
                service.inflight_waiters(target) < clients - 1
                and time.time() < deadline
            ):
                time.sleep(0.005)

        responses = []
        lock = threading.Lock()

        def post():
            answer = request("POST", base + "/v1/run", spec.to_dict())
            with lock:
                responses.append(answer)

        previous = runner_module._FAULT_HOOK
        runner_module._FAULT_HOOK = hook
        try:
            threads = [
                threading.Thread(target=post) for _ in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            runner_module._FAULT_HOOK = previous

        assert len(executions) == 1
        assert [status for status, _, _ in responses] == [200] * clients
        bodies = [body for _, body, _ in responses]
        assert all(body["fingerprint"] == target for body in bodies)
        assert all(
            headers["X-Repro-Fingerprint"] == target
            for _, _, headers in responses
        )
        # All N payloads byte-identical, one leader + N-1 followers.
        assert len({canonical_json(b["result"]) for b in bodies}) == 1
        sources = sorted(body["source"] for body in bodies)
        assert sources.count("executed") == 1
        assert sources.count("coalesced") == clients - 1

    def test_repeat_post_replays_from_disk_cache(self, live):
        _, base = live
        status, first, _ = request("POST", base + "/v1/run", spec_payload())
        assert status == 200 and first["source"] == "executed"
        status, again, _ = request("POST", base + "/v1/run", spec_payload())
        assert status == 200 and again["source"] == "cache"
        assert canonical_json(again["result"]) == canonical_json(
            first["result"]
        )

    def test_result_matches_direct_run(self, live):
        _, base = live
        spec = RunSpec.from_dict(spec_payload(algorithm="bko20"))
        clear_result_cache()
        direct = run_many([spec], cache=False)[0]
        clear_result_cache()
        _, body, _ = request("POST", base + "/v1/run", spec.to_dict())
        assert canonical_json(body["result"]) == canonical_json(
            direct.to_dict()
        )
        assert RunResult.from_dict(body["result"]).result_fingerprint() == (
            direct.result_fingerprint()
        )


class TestStrictDeserialization:
    def test_unknown_field_is_400_naming_the_field(self, live):
        _, base = live
        status, body, _ = request(
            "POST", base + "/v1/run", spec_payload(bogus_field=1)
        )
        assert status == 400
        assert body["error"] == "spec_format"
        assert "bogus_field" in body["message"]

    def test_unknown_field_in_batch_names_the_index(self, live):
        _, base = live
        status, body, _ = request(
            "POST",
            base + "/v1/jobs",
            {"specs": [spec_payload(), spec_payload(bogus_field=1)]},
        )
        assert status == 400
        assert "specs[1]" in body["message"]
        assert "bogus_field" in body["message"]

    def test_non_json_body_is_400(self, live):
        _, base = live
        status, body, _ = request(
            "POST", base + "/v1/run", raw=b"not json at all"
        )
        assert status == 400 and body["error"] == "bad_json"

    def test_empty_body_is_400(self, live):
        _, base = live
        status, body, _ = request("POST", base + "/v1/run", raw=b"")
        assert status == 400 and body["error"] == "bad_request"

    def test_unknown_route_is_404(self, live):
        _, base = live
        status, body, _ = request("GET", base + "/v1/nope")
        assert status == 404 and body["error"] == "not_found"

    def test_poison_spec_round_trips_as_captured_failure(self, live):
        _, base = live
        status, body, headers = request(
            "POST",
            base + "/v1/run",
            spec_payload(algorithm="no_such_algorithm"),
        )
        assert status == 200
        assert body["failed"] is True
        assert headers["X-Repro-Fingerprint"] == body["fingerprint"]
        restored = RunResult.from_dict(body["result"])
        assert isinstance(restored, FailedResult)
        assert restored.error_type
        assert "no_such_algorithm" in restored.error_message


class TestJobs:
    def batch(self):
        instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
        return [
            RunSpec(instance=instance, algorithm="greedy_sequential"),
            RunSpec(
                instance=instance,
                algorithm="greedy_sequential",
                scenario=ScenarioSpec(
                    model="crash_stop", seed=5, params={"f": 2}
                ),
            ),
            RunSpec(instance=instance, algorithm="linial_greedy"),
            # The duplicate: one solve must fan out over both slots.
            RunSpec(instance=instance, algorithm="greedy_sequential"),
        ]

    def submit(self, base, specs, **extra):
        return request(
            "POST",
            base + "/v1/jobs",
            {"specs": [spec.to_dict() for spec in specs], **extra},
        )

    def test_stream_is_exactly_once_in_order_and_byte_identical(self, live):
        _, base = live
        specs = self.batch()
        clear_result_cache()
        serial = run_many(specs, cache=False)
        clear_result_cache()
        status, body, headers = self.submit(base, specs, shards=2)
        assert status == 201 and body["created"] is True
        assert headers["X-Repro-Fingerprint"] == body["job"]
        with urllib.request.urlopen(
            base + body["stream_url"], timeout=120
        ) as stream:
            lines = [json.loads(line) for line in stream if line.strip()]
        assert [line["index"] for line in lines] == list(range(len(specs)))
        for index, line in enumerate(lines):
            assert canonical_json(line["result"]) == canonical_json(
                serial[index].to_dict()
            ), f"slot {index} diverges from serial run_many"
        # Duplicate slots got independent but identical payloads.
        assert lines[0]["result"] == lines[3]["result"]

    def test_status_reaches_done_and_resubmit_is_idempotent(self, live):
        _, base = live
        specs = self.batch()
        status, body, _ = self.submit(base, specs, shards=2)
        assert status == 201
        job_id = body["job"]
        deadline = time.time() + BARRIER_S
        while time.time() < deadline:
            status, snap, _ = request("GET", base + body["status_url"])
            if snap["state"] != "running":
                break
            time.sleep(0.05)
        assert snap["state"] == "done"
        assert snap["done"] == snap["total"] == len(specs)
        # The cluster's own view rides along: per-shard states + timing.
        assert snap["cluster"]["complete"] is True
        assert snap["cluster"]["shards"] == 2
        # Identical batch -> the same job, already done, nothing re-run.
        status, again, _ = self.submit(base, specs, shards=2)
        assert status == 200
        assert again["job"] == job_id and again["created"] is False
        # A different shard count is a different plan -> a new job.
        status, other, _ = self.submit(base, specs, shards=1)
        assert status == 201 and other["job"] != job_id

    def test_unknown_job_is_404(self, live):
        _, base = live
        status, body, _ = request("GET", base + "/v1/jobs/" + "0" * 64)
        assert status == 404 and body["error"] == "not_found"

    def test_empty_batch_is_400(self, live):
        _, base = live
        status, body, _ = request("POST", base + "/v1/jobs", {"specs": []})
        assert status == 400

    def test_bad_shards_value_is_400(self, live):
        _, base = live
        status, body, _ = self.submit(base, self.batch(), shards="many")
        assert status == 400 and "shards" in body["message"]


class TestIntrospection:
    def test_healthz_reports_jobs_and_inflight(self, live):
        _, base = live
        status, body, _ = request("GET", base + "/v1/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["uptime_s"] >= 0
        assert body["jobs"]["total"] == 0
        assert body["inflight_runs"] == 0

    def test_registry_lists_what_specs_can_name(self, live):
        _, base = live
        status, body, _ = request("GET", base + "/v1/registry")
        assert status == 200
        assert "bko20" in body["algorithms"]
        assert "complete_bipartite" in body["families"]
        assert "crash_stop" in body["scenarios"]
        assert "scaled" in body["policies"]
        assert set(body["scenario_capable_algorithms"]) <= set(
            body["algorithms"]
        )


class TestServiceCore:
    """Transport-free checks on ReproService itself."""

    def test_run_one_sources(self, tmp_path):
        service = ReproService(tmp_path / "data")
        spec = RunSpec.from_dict(spec_payload())
        fingerprint, result, source = service.run_one(spec)
        assert fingerprint == spec.fingerprint()
        assert source == "executed"
        again_fp, again, source = service.run_one(spec)
        assert source == "cache"
        assert again_fp == fingerprint
        assert canonical_json(again.to_dict()) == canonical_json(
            result.to_dict()
        )
        # Followers receive copies, never the leader's object.
        assert again is not result

    def test_failed_driver_job_restarts_in_place(self, tmp_path):
        service = ReproService(tmp_path / "data", default_shards=1)
        specs = [RunSpec.from_dict(spec_payload())]
        job, created = service.submit_job(specs)
        assert created is True
        job.finish(error="InjectedError: simulated driver crash")
        job.state = "failed"  # terminal failure, slots possibly empty
        retried, created = service.submit_job(specs)
        assert created is False
        assert retried is not job  # a fresh Job object, same id
        assert retried.id == job.id
        deadline = time.time() + BARRIER_S
        while retried.snapshot()["state"] == "running":
            assert time.time() < deadline, "restarted job never finished"
            time.sleep(0.02)
        assert retried.snapshot()["state"] == "done"
