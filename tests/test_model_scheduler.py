"""Tests for the synchronous scheduler — the LOCAL model's semantics."""

import networkx as nx
import pytest

from repro.errors import RoundLimitExceededError
from repro.model.algorithm import NodeAlgorithm
from repro.model.network import Network
from repro.model.scheduler import (
    RoundArena,
    Scheduler,
    run_on_graph,
    shared_arena,
)
from repro.primitives.node_algorithms import FloodMaxAlgorithm


class EchoOnce(NodeAlgorithm):
    """Sends its ID once, halts after receiving; output = sorted inbox."""

    def initialize(self, ctx):
        ctx.state["seen"] = []

    def compose_messages(self, ctx):
        return {port: ctx.unique_id for port in range(ctx.degree)}

    def receive_messages(self, ctx, inbox):
        ctx.state["seen"] = sorted(inbox.values())
        ctx.halt()

    def output(self, ctx):
        return ctx.state["seen"]


class NeverHalts(NodeAlgorithm):
    def compose_messages(self, ctx):
        return {}

    def receive_messages(self, ctx, inbox):
        pass

    def output(self, ctx):  # pragma: no cover
        return None


class TestSynchronousSemantics:
    def test_one_round_echo(self):
        result = run_on_graph(EchoOnce(), nx.path_graph(3))
        assert result.rounds == 1
        # node 1 (ID 2) hears both neighbors (IDs 1 and 3)
        assert result.outputs[1] == [1, 3]
        assert result.outputs[0] == [2]

    def test_message_count(self):
        result = run_on_graph(EchoOnce(), nx.cycle_graph(5))
        assert result.messages_sent == 10  # 2 per node

    def test_information_travels_one_hop_per_round(self):
        """FloodMax with horizon h: only nodes within distance h of the
        max-ID node learn the max — the defining property of
        synchronous rounds."""
        g = nx.path_graph(6)  # IDs 1..6 in node order; max at node 5
        for horizon in (1, 2, 5):
            result = run_on_graph(FloodMaxAlgorithm(horizon), g)
            for node in g.nodes():
                distance = 5 - node
                if distance <= horizon:
                    assert result.outputs[node] == 6
                else:
                    assert result.outputs[node] < 6

    def test_round_budget_enforced(self):
        scheduler = Scheduler(Network(nx.path_graph(2)), max_rounds=3)
        with pytest.raises(RoundLimitExceededError):
            scheduler.run(NeverHalts())

    def test_trace_recording(self):
        scheduler = Scheduler(Network(nx.path_graph(2)), record_trace=True)
        result = scheduler.run(EchoOnce())
        assert len(result.trace) == 2
        senders = {m.sender for m in result.trace}
        assert senders == {0, 1}

    def test_max_message_size_reported(self):
        result = run_on_graph(EchoOnce(), nx.path_graph(2))
        assert result.max_message_size >= 1

    def test_max_message_size_audit_opt_out(self):
        scheduler = Scheduler(
            Network(nx.path_graph(2)), audit_message_sizes=False
        )
        result = scheduler.run(EchoOnce())
        assert result.max_message_size == 0

    def test_max_message_size_derived_from_trace_when_audit_off(self):
        scheduler = Scheduler(
            Network(nx.path_graph(2)),
            audit_message_sizes=False,
            record_trace=True,
        )
        result = scheduler.run(EchoOnce())
        assert result.max_message_size >= 1

    def test_message_size_estimate_cached(self):
        from repro.model.message import Message

        message = Message(sender=0, receiver=1, round_index=1, payload=[1, 2])
        first = message.size_estimate()
        message.payload.append(3)  # cache means later mutation is invisible
        assert message.size_estimate() == first == len(repr([1, 2]))

    def test_halted_nodes_are_not_iterated(self):
        """Active-set scheduling: compose is never called on a node
        that halted in an earlier round."""

        class HaltEarly(NodeAlgorithm):
            def __init__(self):
                self.composed: list[tuple[int, int]] = []

            def initialize(self, ctx):
                ctx.state["round"] = 0

            def compose_messages(self, ctx):
                self.composed.append((ctx.unique_id, ctx.state["round"]))
                return {}

            def receive_messages(self, ctx, inbox):
                ctx.state["round"] += 1
                # Node with ID k halts after round k.
                if ctx.state["round"] >= ctx.unique_id:
                    ctx.halt()

            def output(self, ctx):
                return ctx.state["round"]

        algorithm = HaltEarly()
        result = run_on_graph(algorithm, nx.path_graph(3))
        assert result.rounds == 3
        for unique_id, round_index in algorithm.composed:
            assert round_index < unique_id

    def test_zero_horizon_floodmax_halts_immediately(self):
        result = run_on_graph(FloodMaxAlgorithm(0), nx.path_graph(3))
        assert result.rounds == 0
        assert result.outputs[2] == 3


class TestMaxMessageSizeFlagMatrix:
    """Regression for the audit x trace flag combinations.

    ``audit_message_sizes=False`` must still derive
    ``max_message_size`` from a recorded trace when tracing is on; it
    reports 0 only when *neither* source exists.
    """

    @pytest.mark.parametrize("audit", [True, False])
    @pytest.mark.parametrize("trace", [True, False])
    def test_all_flag_combinations(self, audit, trace):
        scheduler = Scheduler(
            Network(nx.path_graph(4)),
            audit_message_sizes=audit,
            record_trace=trace,
        )
        result = scheduler.run(FloodMaxAlgorithm(2))
        expected = len(repr(4))  # largest flooded ID
        if audit or trace:
            assert result.max_message_size == expected
        else:
            assert result.max_message_size == 0
        assert len(result.trace) == (result.messages_sent if trace else 0)


class TestRoundArena:
    def test_shared_arena_reuse_is_observably_free(self):
        """Back-to-back runs of different networks in one arena match
        fresh private-arena runs exactly (stale stamps cannot leak)."""
        big = Network(nx.random_regular_graph(4, 24, seed=3))
        small = Network(nx.path_graph(5))
        fresh = [
            Scheduler(big).run(FloodMaxAlgorithm(3)),
            Scheduler(small).run(FloodMaxAlgorithm(2)),
            Scheduler(big).run(FloodMaxAlgorithm(1)),
        ]
        with shared_arena() as arena:
            pooled = [
                Scheduler(big).run(FloodMaxAlgorithm(3)),
                Scheduler(small).run(FloodMaxAlgorithm(2)),
                Scheduler(big).run(FloodMaxAlgorithm(1)),
            ]
        for a, b in zip(fresh, pooled):
            assert a.rounds == b.rounds
            assert a.messages_sent == b.messages_sent
            assert a.outputs == b.outputs
            assert a.max_message_size == b.max_message_size
        # Exiting the context cleared payload references.
        assert set(arena._payload_buf) == {None}

    def test_explicit_arena_parameter(self):
        arena = RoundArena()
        network = Network(nx.cycle_graph(6))
        first = Scheduler(network, arena=arena).run(FloodMaxAlgorithm(2))
        second = Scheduler(network, arena=arena).run(FloodMaxAlgorithm(2))
        assert first.outputs == second.outputs
        assert arena._clock == first.rounds + second.rounds

    def test_send_log_requires_flag(self):
        scheduler = Scheduler(Network(nx.path_graph(3)))
        scheduler.run(FloodMaxAlgorithm(1))
        with pytest.raises(RuntimeError):
            scheduler.send_log()

    def test_failed_run_clears_previous_send_log(self):
        scheduler = Scheduler(
            Network(nx.path_graph(3)), record_send_log=True, max_rounds=2
        )
        scheduler.run(FloodMaxAlgorithm(1))  # succeeds, log populated
        with pytest.raises(RoundLimitExceededError):
            scheduler.run(NeverHalts())
        with pytest.raises(RuntimeError):
            scheduler.send_log()  # stale log must not survive

    def test_send_log_columns_cover_every_message(self):
        network = Network(nx.path_graph(4))
        scheduler = Scheduler(network, record_send_log=True)
        result = scheduler.run(FloodMaxAlgorithm(2))
        rounds_col, slot_col, payload_col = scheduler.send_log()
        assert len(rounds_col) == len(slot_col) == len(payload_col)
        assert len(payload_col) == result.messages_sent
        row_start, *_ = network.delivery_columns()
        assert all(0 <= slot < row_start[network.n] for slot in slot_col)
