"""Tests for the synchronous scheduler — the LOCAL model's semantics."""

import networkx as nx
import pytest

from repro.errors import RoundLimitExceededError
from repro.model.algorithm import NodeAlgorithm
from repro.model.network import Network
from repro.model.scheduler import Scheduler, run_on_graph
from repro.primitives.node_algorithms import FloodMaxAlgorithm


class EchoOnce(NodeAlgorithm):
    """Sends its ID once, halts after receiving; output = sorted inbox."""

    def initialize(self, ctx):
        ctx.state["seen"] = []

    def compose_messages(self, ctx):
        return {port: ctx.unique_id for port in range(ctx.degree)}

    def receive_messages(self, ctx, inbox):
        ctx.state["seen"] = sorted(inbox.values())
        ctx.halt()

    def output(self, ctx):
        return ctx.state["seen"]


class NeverHalts(NodeAlgorithm):
    def compose_messages(self, ctx):
        return {}

    def receive_messages(self, ctx, inbox):
        pass

    def output(self, ctx):  # pragma: no cover
        return None


class TestSynchronousSemantics:
    def test_one_round_echo(self):
        result = run_on_graph(EchoOnce(), nx.path_graph(3))
        assert result.rounds == 1
        # node 1 (ID 2) hears both neighbors (IDs 1 and 3)
        assert result.outputs[1] == [1, 3]
        assert result.outputs[0] == [2]

    def test_message_count(self):
        result = run_on_graph(EchoOnce(), nx.cycle_graph(5))
        assert result.messages_sent == 10  # 2 per node

    def test_information_travels_one_hop_per_round(self):
        """FloodMax with horizon h: only nodes within distance h of the
        max-ID node learn the max — the defining property of
        synchronous rounds."""
        g = nx.path_graph(6)  # IDs 1..6 in node order; max at node 5
        for horizon in (1, 2, 5):
            result = run_on_graph(FloodMaxAlgorithm(horizon), g)
            for node in g.nodes():
                distance = 5 - node
                if distance <= horizon:
                    assert result.outputs[node] == 6
                else:
                    assert result.outputs[node] < 6

    def test_round_budget_enforced(self):
        scheduler = Scheduler(Network(nx.path_graph(2)), max_rounds=3)
        with pytest.raises(RoundLimitExceededError):
            scheduler.run(NeverHalts())

    def test_trace_recording(self):
        scheduler = Scheduler(Network(nx.path_graph(2)), record_trace=True)
        result = scheduler.run(EchoOnce())
        assert len(result.trace) == 2
        senders = {m.sender for m in result.trace}
        assert senders == {0, 1}

    def test_max_message_size_reported(self):
        result = run_on_graph(EchoOnce(), nx.path_graph(2))
        assert result.max_message_size >= 1

    def test_max_message_size_audit_opt_out(self):
        scheduler = Scheduler(
            Network(nx.path_graph(2)), audit_message_sizes=False
        )
        result = scheduler.run(EchoOnce())
        assert result.max_message_size == 0

    def test_max_message_size_derived_from_trace_when_audit_off(self):
        scheduler = Scheduler(
            Network(nx.path_graph(2)),
            audit_message_sizes=False,
            record_trace=True,
        )
        result = scheduler.run(EchoOnce())
        assert result.max_message_size >= 1

    def test_message_size_estimate_cached(self):
        from repro.model.message import Message

        message = Message(sender=0, receiver=1, round_index=1, payload=[1, 2])
        first = message.size_estimate()
        message.payload.append(3)  # cache means later mutation is invisible
        assert message.size_estimate() == first == len(repr([1, 2]))

    def test_halted_nodes_are_not_iterated(self):
        """Active-set scheduling: compose is never called on a node
        that halted in an earlier round."""

        class HaltEarly(NodeAlgorithm):
            def __init__(self):
                self.composed: list[tuple[int, int]] = []

            def initialize(self, ctx):
                ctx.state["round"] = 0

            def compose_messages(self, ctx):
                self.composed.append((ctx.unique_id, ctx.state["round"]))
                return {}

            def receive_messages(self, ctx, inbox):
                ctx.state["round"] += 1
                # Node with ID k halts after round k.
                if ctx.state["round"] >= ctx.unique_id:
                    ctx.halt()

            def output(self, ctx):
                return ctx.state["round"]

        algorithm = HaltEarly()
        result = run_on_graph(algorithm, nx.path_graph(3))
        assert result.rounds == 3
        for unique_id, round_index in algorithm.composed:
            assert round_index < unique_id

    def test_zero_horizon_floodmax_halts_immediately(self):
        result = run_on_graph(FloodMaxAlgorithm(0), nx.path_graph(3))
        assert result.rounds == 0
        assert result.outputs[2] == 3
