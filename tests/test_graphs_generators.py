"""Tests for the workload generators."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.graphs.generators import (
    barbell,
    blow_up_cycle,
    book_graph,
    caterpillar,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    friendship_graph,
    grid_graph,
    hypercube,
    path_graph,
    random_bipartite_regular,
    random_regular,
    random_tree,
    standard_families,
    star_graph,
    torus_graph,
)
from repro.graphs.properties import max_degree, validate_simple_graph


class TestBasicShapes:
    def test_path(self):
        g = path_graph(6)
        assert g.number_of_edges() == 5
        assert max_degree(g) == 2

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.number_of_edges() == 7
        assert all(d == 2 for _n, d in g.degree())

    def test_star(self):
        g = star_graph(9)
        assert max_degree(g) == 9
        assert g.number_of_edges() == 9

    def test_complete(self):
        g = complete_graph(6)
        assert g.number_of_edges() == 15
        assert max_degree(g) == 5

    def test_complete_bipartite_integer_labels(self):
        g = complete_bipartite(3, 4)
        assert set(g.nodes()) == set(range(7))
        assert g.number_of_edges() == 12
        assert nx.is_bipartite(g)

    def test_grid_and_torus(self):
        assert max_degree(grid_graph(4, 5)) == 4
        torus = torus_graph(4, 5)
        assert all(d == 4 for _n, d in torus.degree())

    def test_hypercube(self):
        g = hypercube(4)
        assert g.number_of_nodes() == 16
        assert all(d == 4 for _n, d in g.degree())


class TestRandomFamilies:
    def test_random_regular_is_regular(self):
        g = random_regular(6, 20, seed=5)
        assert all(d == 6 for _n, d in g.degree())

    def test_random_regular_deterministic_by_seed(self):
        a = random_regular(4, 12, seed=1)
        b = random_regular(4, 12, seed=1)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random_regular_rejects_odd_product(self):
        with pytest.raises(ParameterError):
            random_regular(3, 7, seed=0)

    def test_random_bipartite_regular(self):
        g = random_bipartite_regular(4, 10, seed=3)
        assert all(d == 4 for _n, d in g.degree())
        assert nx.is_bipartite(g)
        validate_simple_graph(g)

    def test_erdos_renyi_bounds(self):
        g = erdos_renyi(30, 0.2, seed=4)
        assert g.number_of_nodes() == 30
        validate_simple_graph(g)

    def test_random_tree_is_tree(self):
        g = random_tree(25, seed=8)
        assert nx.is_tree(g)

    def test_random_tree_single_node(self):
        g = random_tree(1, seed=0)
        assert g.number_of_nodes() == 1
        assert g.number_of_edges() == 0


class TestSkewedFamilies:
    def test_caterpillar_structure(self):
        g = caterpillar(4, 3)
        assert g.number_of_nodes() == 4 + 12
        assert nx.is_tree(g)

    def test_friendship_degrees(self):
        g = friendship_graph(5)
        degrees = sorted(d for _n, d in g.degree())
        assert degrees[-1] == 10  # hub
        assert degrees[0] == 2

    def test_book_graph(self):
        g = book_graph(6)
        assert g.degree(0) == 7 and g.degree(1) == 7

    def test_barbell(self):
        g = barbell(4, 2)
        assert g.number_of_nodes() == 10
        validate_simple_graph(g)

    def test_blow_up_cycle_regular(self):
        g = blow_up_cycle(5, 3)
        assert all(d == 6 for _n, d in g.degree())
        assert g.number_of_nodes() == 15


class TestParameterValidation:
    @pytest.mark.parametrize(
        "func, args",
        [
            (path_graph, (0,)),
            (cycle_graph, (2,)),
            (star_graph, (0,)),
            (complete_graph, (1,)),
            (complete_bipartite, (0, 3)),
            (grid_graph, (0, 3)),
            (torus_graph, (2, 4)),
            (hypercube, (0,)),
            (caterpillar, (0, 1)),
            (friendship_graph, (0,)),
            (book_graph, (0,)),
            (barbell, (2, 1)),
            (blow_up_cycle, (2, 2)),
        ],
    )
    def test_rejects_degenerate_sizes(self, func, args):
        with pytest.raises(ParameterError):
            func(*args)


class TestStandardFamilies:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=3, max_value=8))
    def test_all_families_build_simple_graphs(self, size):
        for family in standard_families(seed=5):
            graph = family.build(size)
            validate_simple_graph(graph)
            assert graph.number_of_edges() > 0


class TestExpanderFamilies:
    def test_circulant_structure(self):
        from repro.graphs.generators import circulant

        g = circulant(20, (1, 2, 5))
        assert g.number_of_nodes() == 20
        assert all(d == 6 for _n, d in g.degree())
        validate_simple_graph(g)

    def test_circulant_rejects_bad_offsets(self):
        from repro.graphs.generators import circulant

        with pytest.raises(ParameterError):
            circulant(10, (0,))
        with pytest.raises(ParameterError):
            circulant(10, ())
        with pytest.raises(ParameterError):
            circulant(2, (1,))

    def test_de_bruijn_shape(self):
        from repro.graphs.generators import de_bruijn_like

        g = de_bruijn_like(2, 4)
        assert g.number_of_nodes() == 16
        assert max(d for _n, d in g.degree()) <= 4
        validate_simple_graph(g)
        assert nx.is_connected(g)

    def test_de_bruijn_rejects_bad_params(self):
        from repro.graphs.generators import de_bruijn_like

        with pytest.raises(ParameterError):
            de_bruijn_like(1, 3)
        with pytest.raises(ParameterError):
            de_bruijn_like(2, 0)

    def test_solver_on_expanders(self):
        from repro.graphs.generators import circulant, de_bruijn_like
        from repro.core.solver import solve_edge_coloring
        from repro.coloring.verify import check_proper_edge_coloring

        for g in (circulant(24, (1, 3, 7)), de_bruijn_like(2, 5)):
            result = solve_edge_coloring(g, seed=1)
            check_proper_edge_coloring(g, result.coloring)
