"""Tests for the CONGEST execution mode."""

import networkx as nx
import pytest

from repro.errors import ModelViolationError, ParameterError
from repro.coloring.verify import check_proper_edge_coloring
from repro.graphs.properties import assign_unique_ids
from repro.model.congest import (
    CongestScheduler,
    payload_bits,
    standard_bandwidth,
)
from repro.model.edge_network import line_graph_network
from repro.model.network import Network
from repro.primitives.node_algorithms import (
    FloodMaxAlgorithm,
    LinialColorReductionAlgorithm,
)


class TestPayloadBits:
    def test_integers(self):
        assert payload_bits(0) == 1
        assert payload_bits(1) == 1
        assert payload_bits(255) == 8
        assert payload_bits(256) == 9

    def test_none_and_bool(self):
        assert payload_bits(None) == 1
        assert payload_bits(True) == 1

    def test_tuples_add_framing(self):
        assert payload_bits((3, 5)) == (2 + 2) + (3 + 2)

    def test_strings(self):
        assert payload_bits("ab") == 16

    def test_rejects_unknown_types(self):
        with pytest.raises(ModelViolationError):
            payload_bits(object())


class TestStandardBandwidth:
    def test_log_n_scale(self):
        assert standard_bandwidth(1024, constant=4) == 40

    def test_rejects_bad_n(self):
        with pytest.raises(ParameterError):
            standard_bandwidth(0)


class TestCongestExecution:
    def test_floodmax_is_congest_compatible(self):
        g = nx.path_graph(10)
        net = Network(g)
        scheduler = CongestScheduler(
            net, bandwidth_bits=standard_bandwidth(10)
        )
        report = scheduler.run_congest(FloodMaxAlgorithm(horizon=9))
        assert report.congest_compatible
        assert all(v == 10 for v in report.result.outputs.values())

    def test_linial_is_congest_compatible(self):
        """The reproduction finding: Linial's color reduction sends
        single colors (O(log n + log Δ) bits), so it already fits
        CONGEST — the paper's recursion is LOCAL only because of its
        *composition*, not its primitives."""
        g = nx.complete_bipartite_graph(4, 4)
        ids = assign_unique_ids(g, seed=3)
        net = line_graph_network(g, node_ids=ids)
        scheduler = CongestScheduler(
            net, bandwidth_bits=standard_bandwidth(net.n, constant=8)
        )
        report = scheduler.run_congest(
            LinialColorReductionAlgorithm(id_space=net.max_id())
        )
        assert report.congest_compatible
        check_proper_edge_coloring(g, dict(report.result.outputs))

    def test_strict_mode_raises_on_violation(self):
        g = nx.path_graph(6)
        net = Network(g, ids={i: 2**40 + i for i in range(6)})
        scheduler = CongestScheduler(net, bandwidth_bits=8, strict=True)
        with pytest.raises(ModelViolationError):
            scheduler.run_congest(FloodMaxAlgorithm(horizon=2))

    def test_lenient_mode_counts_violations(self):
        g = nx.path_graph(6)
        net = Network(g, ids={i: 2**40 + i for i in range(6)})
        scheduler = CongestScheduler(net, bandwidth_bits=8, strict=False)
        report = scheduler.run_congest(FloodMaxAlgorithm(horizon=2))
        assert not report.congest_compatible
        assert report.violations > 0
        assert report.max_bits_seen >= 41

    def test_result_still_reports_repr_size_metric(self):
        """The send-log audit must not cost the LOCAL size metric:
        max_message_size stays available on CONGEST results."""
        g = nx.path_graph(10)
        scheduler = CongestScheduler(
            Network(g), bandwidth_bits=standard_bandwidth(10)
        )
        report = scheduler.run_congest(FloodMaxAlgorithm(horizon=2))
        assert report.result.max_message_size == len(repr(10))

    def test_rejects_bad_bandwidth(self):
        net = Network(nx.path_graph(3))
        with pytest.raises(ParameterError):
            CongestScheduler(net, bandwidth_bits=0)

    def test_audit_stays_type_strict_across_equal_payloads(self):
        """The size memo must not let 1.0 (unsupported float) reuse the
        cached size of the equal-comparing int 1."""
        from repro.model.algorithm import NodeAlgorithm

        class IntThenFloat(NodeAlgorithm):
            def initialize(self, ctx):
                ctx.state["round"] = 0

            def compose_messages(self, ctx):
                payload = 1 if ctx.state["round"] == 0 else 1.0
                return {port: payload for port in range(ctx.degree)}

            def receive_messages(self, ctx, inbox):
                ctx.state["round"] += 1
                if ctx.state["round"] >= 2:
                    ctx.halt()

            def output(self, ctx):
                return None

        net = Network(nx.path_graph(3))
        scheduler = CongestScheduler(net, bandwidth_bits=8, strict=False)
        with pytest.raises(ModelViolationError, match="float"):
            scheduler.run_congest(IntThenFloat())
