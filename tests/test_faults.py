"""The chaos harness: fault specs, the injector, and the end-to-end smoke.

Pins the :mod:`repro.faults` contracts:

* fault descriptions are validated, normalised, fingerprinted, and
  round-trip exactly through JSON (the worker-environment channel);
* the injector is deterministic, scoped (install/uninstall leaves no
  residue, even across failures), and refuses to stack;
* torn-write injection produces exactly the artefact every reader
  treats as absent, and recovery re-publishes;
* the seeded chaos smoke — poison + flaky + hang specs, torn shard
  results, killed workers, a stale lease, all at once through
  ``run_sharded`` — terminates with exact quarantine, byte-identical
  survivors, and serially-reproducible failure records (the PR's
  acceptance scenario).
"""

from __future__ import annotations

import pytest

from repro.api import FailurePolicy, InstanceSpec, RunSpec, run
from repro.api import diskcache as diskcache_module
from repro.api import runner as runner_module
from repro.api.diskcache import atomic_write_json, read_json
from repro.api.runner import clear_result_cache
from repro.cluster.queue import ShardQueue, claim_path
from repro.errors import FaultError, InjectedFault
from repro.faults import (
    ENV_VAR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_faults,
    apply_stale_leases,
    chaos_smoke,
    env_with_faults,
    install_from_env,
    make_fault,
    smoke_plan,
)


@pytest.fixture(autouse=True)
def clean_seams():
    clear_result_cache()
    assert runner_module._FAULT_HOOK is None
    assert diskcache_module._PUBLISH_FAULT is None
    yield
    runner_module._FAULT_HOOK = None
    diskcache_module._PUBLISH_FAULT = None
    clear_result_cache()


def tiny_spec() -> RunSpec:
    return RunSpec(
        instance=InstanceSpec(family="complete_bipartite", size=3, seed=2),
        algorithm="greedy_sequential",
    )


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            make_fault("meteor_strike", target="*")

    def test_missing_and_extra_params_rejected(self):
        with pytest.raises(FaultError, match="requires params"):
            make_fault("poison")
        with pytest.raises(FaultError, match="does not take"):
            make_fault("poison", target="*", count=2)

    def test_value_validation(self):
        with pytest.raises(FaultError):
            make_fault("flaky", target="*", fail_attempts=0)
        with pytest.raises(FaultError):
            make_fault("hang", target="*", sleep_s=0)
        with pytest.raises(FaultError):
            make_fault("torn_write", match="", count=1)
        with pytest.raises(FaultError):
            make_fault("worker_kill", after_specs=-1)
        with pytest.raises(FaultError):
            make_fault("stale_lease", shard=-1, age_s=10)

    def test_matching(self):
        fault = make_fault("poison", target="abc")
        assert fault.matches("abcdef")
        assert not fault.matches("abd")
        assert make_fault("poison", target="*").matches("anything")

    def test_plan_round_trip_and_fingerprint(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                make_fault("poison", target="aa"),
                make_fault("torn_write", match="results/", count=2),
            ),
        )
        loaded = FaultPlan.from_json(plan.to_json())
        assert loaded == plan
        assert loaded.fingerprint() == plan.fingerprint()
        # A different seed is a different plan.
        other = FaultPlan(seed=8, faults=plan.faults)
        assert other.fingerprint() != plan.fingerprint()

    def test_bad_json_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json("{not json")
        with pytest.raises(FaultError):
            FaultPlan.from_json('{"format": 99, "seed": 0, "faults": []}')


class TestInjector:
    def test_scoped_install_and_uninstall(self):
        plan = FaultPlan(faults=(make_fault("poison", target="zz"),))
        with active_faults(plan):
            assert runner_module._FAULT_HOOK is not None
            assert diskcache_module._PUBLISH_FAULT is not None
        assert runner_module._FAULT_HOOK is None
        assert diskcache_module._PUBLISH_FAULT is None

    def test_uninstalls_on_exception(self):
        plan = FaultPlan(faults=(make_fault("poison", target="zz"),))
        with pytest.raises(RuntimeError, match="boom"):
            with active_faults(plan):
                raise RuntimeError("boom")
        assert runner_module._FAULT_HOOK is None

    def test_refuses_to_stack(self):
        plan = FaultPlan(faults=(make_fault("poison", target="zz"),))
        with active_faults(plan):
            with pytest.raises(InjectedFault, match="already installed"):
                FaultInjector(plan).install()

    def test_poison_through_the_executor(self):
        spec = tiny_spec()
        plan = FaultPlan(
            faults=(make_fault("poison", target=spec.fingerprint()),)
        )
        with active_faults(plan):
            result = run(spec, cache=False, on_error="capture")
        assert result.is_failure()
        assert result.error_type == "InjectedFault"

    def test_flaky_keys_on_runner_attempt_number(self):
        spec = tiny_spec()
        plan = FaultPlan(
            faults=(
                make_fault(
                    "flaky", target=spec.fingerprint(), fail_attempts=1
                ),
            )
        )
        with active_faults(plan):
            result = run(
                spec,
                cache=False,
                on_error=FailurePolicy(on_error="capture", retries=1),
            )
        assert not result.is_failure()

    def test_worker_kill_inert_outside_workers(self):
        spec = tiny_spec()
        plan = FaultPlan(faults=(make_fault("worker_kill", after_specs=0),))
        with active_faults(plan):  # in_worker=False: must NOT exit
            result = run(spec, cache=False)
        assert not result.is_failure()

    def test_torn_write_and_recovery(self, tmp_path):
        plan = FaultPlan(
            faults=(make_fault("torn_write", match=str(tmp_path), count=1),)
        )
        target = tmp_path / "victim.json"
        with active_faults(plan):
            atomic_write_json(target, {"key": "value"})
            assert target.exists()
            assert read_json(target) is None  # torn: unreadable, not absent
            atomic_write_json(target, {"key": "value"})  # budget exhausted
            assert read_json(target) == {"key": "value"}

    def test_env_round_trip(self):
        plan = FaultPlan(seed=3, faults=(make_fault("poison", target="ab"),))
        env = env_with_faults(plan)
        assert set(env) == {ENV_VAR}
        injector = install_from_env(env)
        try:
            assert injector is not None
            assert injector.in_worker
            assert injector.plan == plan
        finally:
            injector.uninstall()
        assert install_from_env({}) is None

    def test_apply_stale_leases(self, tmp_path):
        plan = FaultPlan(
            faults=(make_fault("stale_lease", shard=1, age_s=1e6),)
        )
        assert apply_stale_leases(plan, tmp_path) == [1]
        lease = read_json(claim_path(tmp_path, 1))
        assert lease["worker"] == "chaos-ghost:0"
        queue = ShardQueue(tmp_path, worker_id="t:1", lease_ttl=60.0)
        assert queue.is_stale(lease)
        assert queue.claim(1)


class TestChaosSmoke:
    def test_smoke_plan_is_seed_deterministic(self):
        fingerprints = [f"{i:x}" * 16 for i in range(4)]
        assert smoke_plan(2, fingerprints) == smoke_plan(2, fingerprints)
        assert (
            smoke_plan(0, fingerprints).fingerprint()
            != smoke_plan(1, fingerprints).fingerprint()
        )

    def test_end_to_end(self):
        # The PR's acceptance scenario: a sharded run under a seeded
        # mixed-fault schedule (poison + hang + flaky specs, torn shard
        # results, self-killing workers, a pre-planted stale lease)
        # terminates, quarantines exactly the doomed specs, merges
        # survivors byte-identical to a fault-free serial baseline, and
        # reproduces its failure records in a serial replay.  All of
        # those contracts are asserted inside chaos_smoke (ClusterError
        # on any breach).
        summary = chaos_smoke(seed=0)
        assert summary["survivors_byte_identical"]
        assert summary["failures_reproducible"]
        assert len(summary["failed_slots"]) >= 2
        assert summary["worker_kills_observed"] >= 1
