"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.graphs.io import read_coloring
from repro.coloring.verify import check_proper_edge_coloring
from repro.graphs.generators import complete_bipartite
from repro.graphs.io import write_edge_list


class TestSolveCommand:
    def test_solve_generated_family(self, capsys):
        assert main(["solve", "--family", "complete_bipartite", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "colored 16 edges" in out
        assert "LOCAL rounds" in out

    def test_solve_from_file_with_output(self, tmp_path, capsys):
        graph = complete_bipartite(3, 3)
        graph_path = tmp_path / "g.txt"
        write_edge_list(graph, graph_path)
        out_path = tmp_path / "c.txt"
        assert main([
            "solve", "--input", str(graph_path), "--output", str(out_path),
        ]) == 0
        coloring = read_coloring(out_path)
        check_proper_edge_coloring(graph, coloring)

    def test_solve_with_breakdown(self, capsys):
        assert main([
            "solve", "--family", "cycle", "--size", "8", "--breakdown", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "initial Linial" in out

    @pytest.mark.parametrize("policy", ["scaled", "paper", "kuhn20", "machinery"])
    def test_all_policies(self, policy, capsys):
        assert main([
            "solve", "--family", "complete", "--size", "6",
            "--policy", policy,
        ]) == 0

    def test_requires_instance_source(self):
        with pytest.raises(SystemExit):
            main(["solve"])


class TestSolveEquivalence:
    """The spec-driven solve path matches the pre-redesign direct path."""

    def test_solve_rounds_and_coloring_match_direct_solver(self, capsys, tmp_path):
        from repro.core.params import scaled_policy
        from repro.core.solver import solve_edge_coloring

        out_path = tmp_path / "c.txt"
        assert main([
            "solve", "--family", "complete_bipartite", "--size", "4",
            "--seed", "1", "--policy", "scaled", "--output", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        direct = solve_edge_coloring(
            complete_bipartite(4, 4), policy=scaled_policy(), seed=1
        )
        assert f"in {direct.rounds} LOCAL rounds" in out
        assert read_coloring(out_path) == direct.coloring


class TestRaceCommand:
    def test_race_prints_all_registered_algorithms(self, capsys):
        from repro.api import algorithm_registry

        assert main(["race", "--family", "complete_bipartite", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert "BKO20 (this paper)" in out
        for info in algorithm_registry().values():
            assert info.label in out

    def test_race_rounds_match_direct_runs(self, capsys):
        """Registry-routed race rounds equal the pre-redesign direct calls."""
        from repro.baselines.registry import run_baseline
        from repro.core.solver import solve_edge_coloring

        assert main([
            "race", "--family", "complete_bipartite", "--size", "3",
            "--seed", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        graph = complete_bipartite(3, 3)
        assert payload["series"]["BKO20 (this paper)"] == [
            solve_edge_coloring(graph, seed=1).rounds
        ]
        for name in ("linial_greedy", "kuhn_wattenhofer", "randomized_luby"):
            assert payload["series"][name] == [
                run_baseline(name, graph, seed=1).rounds
            ]


class TestListCommand:
    def test_list_prints_all_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "complete_bipartite" in out
        assert "bko20" in out and "randomized_luby" in out
        assert "machinery" in out

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        from repro.baselines.registry import all_baselines
        from repro.graphs.families import family_names

        assert set(payload["families"]) == set(family_names())
        assert set(payload["algorithms"]) == {"bko20", *all_baselines()}
        assert payload["algorithms"]["bko20"]["kind"] == "paper"
        assert set(payload["policies"]) == {"scaled", "paper", "kuhn20", "machinery"}


class TestJsonOutput:
    def test_solve_json_round_trips(self, capsys):
        assert main([
            "solve", "--family", "cycle", "--size", "6", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["name"] == "bko20"
        assert payload["result"]["rounds"] > 0
        assert payload["result"]["fingerprint"]
        assert payload["spec"]["instance"]["family"] == "cycle"

    def test_info_json(self, capsys):
        assert main(["info", "--family", "star", "--size", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["measures"]["max degree (Δ)"] == 5
        assert payload["fingerprint"]


class TestBenchCoreCommand:
    def test_bench_core_writes_record(self, tmp_path, capsys, monkeypatch):
        import json

        import repro.analysis.bench_core as bench_core

        # Shrink the headline instance so the smoke test stays fast.
        monkeypatch.setattr(bench_core, "LARGEST_RACE_SIDE", 4)
        out_path = tmp_path / "BENCH_scheduler.json"
        assert main(["bench-core", "--quick", "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        record = json.loads(out_path.read_text())
        headline = record["largest_race_instance"]
        assert headline["identical_results"] is True
        assert headline["before"]["wall_clock_s"] > 0
        assert headline["after"]["wall_clock_s"] > 0
        assert headline["speedup"] > 0
        assert record["scaling_vs_n"][0]["messages_per_s"] > 0
        assert record["scaling_vs_delta"][0]["wall_clock_s"] > 0


class TestInfoCommand:
    def test_info_measurements(self, capsys):
        assert main(["info", "--family", "star", "--size", "5"]) == 0
        out = capsys.readouterr().out
        assert "max degree (Δ)" in out
        assert "5" in out


class TestScenarioCommand:
    def test_scenario_prints_outcome_table(self, capsys):
        assert main([
            "scenario", "--family", "grid", "--size", "3",
            "--model", "crash_stop", "--set", "f=2", "--scenario-seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "rounds to quiescence" in out
        assert "crashed agents" in out
        assert "proper on survivors" in out

    def test_scenario_json_round_trips(self, capsys):
        assert main([
            "scenario", "--family", "cycle", "--size", "6",
            "--model", "lossy_links", "--set", "drop=0.2",
            "--scenario-seed", "3", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["scenario"]["model"] == "lossy_links"
        assert payload["spec"]["scenario"]["params"]["drop"] == 0.2
        details = payload["result"]["details"]
        assert details["scenario"]["seed"] == 3
        assert "conflicts_on_survivors" in details

    def test_scenario_synchronous_takes_identity_path(self, capsys):
        assert main([
            "scenario", "--family", "cycle", "--size", "6",
            "--model", "synchronous",
        ]) == 0
        out = capsys.readouterr().out
        assert "identity" in out

    def test_scenario_smoke(self, capsys):
        assert main(["scenario", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "scenario smoke ok" in out
        assert "bounded_async" in out

    def test_scenario_bad_set_pair_exits(self):
        with pytest.raises(SystemExit):
            main([
                "scenario", "--family", "cycle", "--size", "6",
                "--model", "lossy_links", "--set", "drop",
            ])

    def test_scenario_requires_instance_source(self):
        with pytest.raises(SystemExit):
            main(["scenario", "--model", "lossy_links"])


class TestListScenarios:
    def test_list_scenarios_prints_models(self, capsys):
        assert main(["list", "--scenarios"]) == 0
        out = capsys.readouterr().out
        assert "execution models" in out
        assert "bounded_async" in out and "lossy_links" in out
        assert "greedy_sequential" in out
        # The regular registries still print after the scenario tables.
        assert "instance families" in out

    def test_list_scenarios_json(self, capsys):
        assert main(["list", "--scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["scenarios"]) == {
            "synchronous", "bounded_async", "crash_stop", "lossy_links",
        }
        assert payload["scenarios"]["synchronous"]["identity"] is True
        assert "quota" in payload["scenarios"]["bounded_async"]["params"]
        assert "greedy_sequential" in payload["scenario_capable_algorithms"]

    def test_plain_list_has_no_scenario_section(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "scenarios" not in payload


class TestCachePruneCommand:
    def test_cache_prune_reports_removed_count(self, tmp_path, capsys):
        from repro.api import InstanceSpec, RunSpec, run_many

        specs = [
            RunSpec(
                InstanceSpec(family="cycle", size=5 + index, seed=1),
                algorithm="greedy_sequential",
            )
            for index in range(4)
        ]
        run_many(specs, cache=False, cache_dir=tmp_path)
        assert main([
            "cache-prune", "--cache-dir", str(tmp_path), "--max-entries", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "pruned 3" in out
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_cache_prune_json(self, tmp_path, capsys):
        assert main([
            "cache-prune", "--cache-dir", str(tmp_path / "absent"),
            "--max-entries", "5", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["removed"] == 0


class TestShardCommand:
    def specs_file(self, tmp_path, poison=False):
        specs = [
            {
                "instance": {"family": "path", "size": 6, "seed": 1},
                "algorithm": "greedy_sequential",
            },
            {
                "instance": {"family": "cycle", "size": 6, "seed": 1},
                "algorithm": "greedy_sequential",
            },
        ]
        if poison:
            specs.append(
                {
                    "instance": {"family": "path", "size": 6, "seed": 1},
                    "algorithm": "no_such_algorithm",
                }
            )
        path = tmp_path / "specs.json"
        path.write_text(json.dumps(specs))
        return path

    def test_plan_accepts_auto_and_records_the_resolved_count(
        self, tmp_path, capsys
    ):
        assert main([
            "shard", "plan", "--job-dir", str(tmp_path / "job"),
            "--specs", str(self.specs_file(tmp_path)),
            "--shards", "auto", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload["shards"], int)
        assert 1 <= payload["shards"] <= payload["distinct_specs"]

    def test_plan_rejects_garbage_shards(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "shard", "plan", "--job-dir", str(tmp_path / "job"),
                "--specs", str(self.specs_file(tmp_path)),
                "--shards", "many",
            ])

    def test_status_prints_the_timing_table(self, tmp_path, capsys):
        from repro.cluster import ensure_plan, work_loop
        from repro.api import RunSpec

        job = tmp_path / "job"
        specs_path = self.specs_file(tmp_path)
        specs = [
            RunSpec.from_dict(entry)
            for entry in json.loads(specs_path.read_text())
        ]
        ensure_plan(specs, job, shards=2)
        work_loop(job)
        assert main(["shard", "status", "--job-dir", str(job)]) == 0
        out = capsys.readouterr().out
        assert "wall-clock (s)" in out and "specs/s" in out
        assert "shard-0000" in out and "shard-0001" in out
        assert "2/2 shards done" in out

    def test_retry_failed_drain_round_trip(self, tmp_path, capsys):
        assert main([
            "shard", "plan", "--job-dir", str(tmp_path / "job"),
            "--specs", str(self.specs_file(tmp_path, poison=True)),
            "--shards", "1",
        ]) == 0
        from repro.cluster import work_loop

        work_loop(tmp_path / "job")
        capsys.readouterr()  # drop the plan command's output
        assert main([
            "shard", "retry-failed", "--job-dir", str(tmp_path / "job"),
            "--drain", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["requeued"]) == 1
        assert payload["drained"]["job_complete"] is True
        # The poison is still unregistered: it quarantines again.
        assert main([
            "shard", "status", "--job-dir", str(tmp_path / "job"), "--json",
        ]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] is True
        assert len(status["failed"]) == 1

    def test_retry_failed_without_failures_is_a_no_op(self, tmp_path, capsys):
        main([
            "shard", "plan", "--job-dir", str(tmp_path / "job"),
            "--specs", str(self.specs_file(tmp_path)), "--shards", "1",
        ])
        from repro.cluster import work_loop

        work_loop(tmp_path / "job")
        capsys.readouterr()
        assert main([
            "shard", "retry-failed", "--job-dir", str(tmp_path / "job"),
        ]) == 0
        assert "no quarantined specs" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_smoke_json_summary(self, capsys):
        assert main(["serve", "--smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executions"] == 1
        assert payload["coalesced"] == payload["clients"] - 1
        assert payload["byte_identical"] is True
