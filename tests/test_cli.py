"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from repro.graphs.io import read_coloring
from repro.coloring.verify import check_proper_edge_coloring
from repro.graphs.generators import complete_bipartite
from repro.graphs.io import write_edge_list


class TestSolveCommand:
    def test_solve_generated_family(self, capsys):
        assert main(["solve", "--family", "complete_bipartite", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "colored 16 edges" in out
        assert "LOCAL rounds" in out

    def test_solve_from_file_with_output(self, tmp_path, capsys):
        graph = complete_bipartite(3, 3)
        graph_path = tmp_path / "g.txt"
        write_edge_list(graph, graph_path)
        out_path = tmp_path / "c.txt"
        assert main([
            "solve", "--input", str(graph_path), "--output", str(out_path),
        ]) == 0
        coloring = read_coloring(out_path)
        check_proper_edge_coloring(graph, coloring)

    def test_solve_with_breakdown(self, capsys):
        assert main([
            "solve", "--family", "cycle", "--size", "8", "--breakdown", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "initial Linial" in out

    @pytest.mark.parametrize("policy", ["scaled", "paper", "kuhn20", "machinery"])
    def test_all_policies(self, policy, capsys):
        assert main([
            "solve", "--family", "complete", "--size", "6",
            "--policy", policy,
        ]) == 0

    def test_requires_instance_source(self):
        with pytest.raises(SystemExit):
            main(["solve"])


class TestRaceCommand:
    def test_race_prints_all_algorithms(self, capsys):
        assert main(["race", "--family", "complete_bipartite", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert "BKO20 (this paper)" in out
        assert "kuhn_wattenhofer" in out


class TestBenchCoreCommand:
    def test_bench_core_writes_record(self, tmp_path, capsys, monkeypatch):
        import json

        import repro.analysis.bench_core as bench_core

        # Shrink the headline instance so the smoke test stays fast.
        monkeypatch.setattr(bench_core, "LARGEST_RACE_SIDE", 4)
        out_path = tmp_path / "BENCH_scheduler.json"
        assert main(["bench-core", "--quick", "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        record = json.loads(out_path.read_text())
        headline = record["largest_race_instance"]
        assert headline["identical_results"] is True
        assert headline["before"]["wall_clock_s"] > 0
        assert headline["after"]["wall_clock_s"] > 0
        assert headline["speedup"] > 0
        assert record["scaling_vs_n"][0]["messages_per_s"] > 0
        assert record["scaling_vs_delta"][0]["wall_clock_s"] > 0


class TestInfoCommand:
    def test_info_measurements(self, capsys):
        assert main(["info", "--family", "star", "--size", "5"]) == 0
        out = capsys.readouterr().out
        assert "max degree (Δ)" in out
        assert "5" in out
