"""``GET /v1/jobs/<id>/events``: the live stream over real HTTP.

Drives the same ephemeral-port server as ``tests/test_service.py``
with nothing but ``urllib`` and pins the acceptance contract of the
events endpoint:

* a running two-shard job streams its events in merge order, each line
  carrying a resume cursor;
* ``?after=<cursor>`` reconnects replay nothing and miss nothing (the
  head + tail multiset equals a from-scratch read, and every worker's
  ``seq`` stays strictly increasing across the seam);
* ``?follow=0`` returns the backlog and EOFs instead of tailing;
* a malformed cursor is a 400 naming the problem, never a silent
  replay from the start;
* the streamed job's sealed results stay byte-identical to serial
  ``run_many`` — events never touch results.
"""

from __future__ import annotations

import json
import urllib.request

from repro.api import InstanceSpec, RunSpec, ScenarioSpec, run_many
from repro.api.runner import clear_result_cache
from repro.results import canonical_json

from tests.test_service import live, request  # noqa: F401  (fixture)

STREAM_TIMEOUT = 120


def batch() -> list[RunSpec]:
    instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
    return [
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="crash_stop", seed=5, params={"f": 2}),
        ),
        RunSpec(instance=instance, algorithm="linial_greedy"),
    ]


def submit(base: str, specs: list[RunSpec], **extra):
    return request(
        "POST",
        base + "/v1/jobs",
        {"specs": [spec.to_dict() for spec in specs], **extra},
    )


def stream_events(url: str) -> list[dict]:
    with urllib.request.urlopen(url, timeout=STREAM_TIMEOUT) as response:
        assert response.headers["Content-Type"].startswith(
            "application/x-ndjson"
        )
        assert float(response.headers["X-Repro-Elapsed-Ms"]) >= 0.0
        return [json.loads(line) for line in response if line.strip()]


def stripped(events: list[dict]) -> list[str]:
    return [
        json.dumps(
            {k: v for k, v in e.items() if k != "cursor"}, sort_keys=True
        )
        for e in events
    ]


class TestEventsEndpoint:
    def test_followed_stream_tells_the_whole_story(self, live):
        _, base = live
        status, body, _ = submit(base, batch(), shards=2)
        assert status == 201
        assert body["events_url"] == f"/v1/jobs/{body['job']}/events"
        # Following from the start blocks until the job completes and
        # then EOFs — one connection sees the whole lifecycle.
        events = stream_events(base + body["events_url"])
        kinds = [e["event"] for e in events]
        assert "job_started" in kinds
        assert "job_complete" in kinds
        assert kinds.count("shard_sealed") == 2
        assert len([k for k in kinds if k == "spec_resolved"]) == 3
        for event in events:
            assert isinstance(event["cursor"], str) and event["cursor"]
            assert isinstance(event["seq"], int)
        # The job snapshot advertises the same stream.
        _, snap, _ = request("GET", base + body["status_url"])
        assert snap["events_url"] == body["events_url"]

    def test_after_cursor_resumes_exactly_once(self, live):
        _, base = live
        status, body, _ = submit(base, batch(), shards=2)
        assert status == 201
        url = base + body["events_url"]
        # Wait for the job to finish via the blocking stream, then take
        # the full backlog as the reference read.
        stream_events(url)
        full = stream_events(url + "?follow=0")
        assert len(full) >= 4
        for index, event in enumerate(full):
            tail = stream_events(
                url + "?follow=0&after=" + event["cursor"]
            )
            combined = stripped(full[: index + 1]) + stripped(tail)
            # Multiset-equal to the from-scratch read: the k-way merge
            # may interleave *across* writers differently once late
            # files appear, but nothing is replayed or lost...
            assert sorted(combined) == sorted(stripped(full))
            # ...and no single worker's story ever rewinds across the
            # reconnect seam.
            seen: dict[str, int] = {}
            for item in full[: index + 1] + tail:
                assert item["seq"] > seen.get(item["worker"], 0)
                seen[item["worker"]] = item["seq"]

    def test_follow_zero_eofs_after_the_backlog(self, live):
        _, base = live
        status, body, _ = submit(base, batch(), shards=2)
        assert status == 201
        url = base + body["events_url"]
        # Wait out the drain via the blocking stream, then confirm the
        # one-shot read terminates with the final cursor dry.
        stream_events(url)
        backlog = stream_events(url + "?follow=0")
        assert backlog
        final = backlog[-1]["cursor"]
        assert stream_events(url + "?follow=0&after=" + final) == []

    def test_malformed_cursor_is_a_400(self, live):
        _, base = live
        status, body, _ = submit(base, batch(), shards=1)
        assert status in (200, 201)
        url = base + body["events_url"]
        status, error, headers = request("GET", url + "?after=%3Agarbage")
        assert status == 400
        assert error["error"] == "bad_cursor"
        assert float(headers["X-Repro-Elapsed-Ms"]) >= 0.0

    def test_unknown_job_events_is_a_404(self, live):
        _, base = live
        status, body, _ = request(
            "GET", base + "/v1/jobs/" + "0" * 64 + "/events"
        )
        assert status == 404 and body["error"] == "not_found"

    def test_streamed_job_results_match_serial_run_many(self, live):
        _, base = live
        specs = batch()
        clear_result_cache()
        serial = run_many(specs, cache=False)
        clear_result_cache()
        status, body, _ = submit(base, specs, shards=2)
        assert status == 201
        # Drain the event stream to completion first — the point: a
        # job watched through its event stream seals the same bytes.
        stream_events(base + body["events_url"])
        with urllib.request.urlopen(
            base + body["stream_url"], timeout=STREAM_TIMEOUT
        ) as stream:
            lines = [json.loads(line) for line in stream if line.strip()]
        assert [line["index"] for line in lines] == list(range(len(specs)))
        for index, line in enumerate(lines):
            assert canonical_json(line["result"]) == canonical_json(
                serial[index].to_dict()
            )
