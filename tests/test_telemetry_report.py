"""The fleet rollup: ledger directories in, benchmark tables out.

Pins ``repro.telemetry.report`` over *real* artifacts — a sharded job
drained in-process (whose workers default the ledger on), retries and
captured failures injected at the fault-hook seam — plus the CLI
surface (``python -m repro report``, ``--json``, ``--smoke``) and the
ledger columns ``repro shard status`` joins into its table.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import repro.api.runner as runner_module
from repro.api import FailurePolicy, InstanceSpec, RunSpec, run_many
from repro.api.runner import clear_result_cache
from repro.cluster import run_sharded
from repro.cluster.coordinator import job_status
from repro.errors import InjectedFault
from repro.telemetry.report import (
    TelemetryError,
    find_ledger_dir,
    format_report,
    report_smoke,
    rollup,
)


def batch() -> list[RunSpec]:
    instance = InstanceSpec(family="complete_bipartite", size=3, seed=6)
    return [
        RunSpec(instance=instance, algorithm="bko20"),
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(instance=instance, algorithm="linial_greedy"),
    ]


@pytest.fixture(autouse=True)
def clean_state():
    clear_result_cache()
    assert runner_module._FAULT_HOOK is None
    yield
    runner_module._FAULT_HOOK = None
    clear_result_cache()


class TestFindLedgerDir:
    def test_job_dir_resolves_to_nested_ledger(self, tmp_path):
        (tmp_path / "ledger").mkdir()
        assert find_ledger_dir(tmp_path) == tmp_path / "ledger"

    def test_bare_directory_is_the_ledger_itself(self, tmp_path):
        assert find_ledger_dir(tmp_path) == tmp_path


class TestRollup:
    def test_rolls_a_real_sharded_job(self, tmp_path):
        specs = batch()
        job_dir = tmp_path / "job"
        run_sharded(specs, job_dir, shards=2, local_workers=0)
        summary = rollup(job_dir)
        assert summary["specs_distinct"] == 3
        assert summary["run_records"] == 3
        assert set(summary["by_algorithm"]) == {
            "bko20",
            "greedy_sequential",
            "linial_greedy",
        }
        for group in summary["by_algorithm"].values():
            assert group["executed"] == 1
            latency = group["latency_s"]
            assert 0 <= latency["p50"] <= latency["p90"] <= latency["max"]
        assert summary["cache"] == {
            "hits": 0,
            "executions": 3,
            "hit_rate": 0.0,
        }
        (worker_stats,) = summary["workers"].values()
        assert worker_stats["executed"] == 3
        assert summary["environments"][0]["python"]

    def test_cache_and_retry_rates(self, tmp_path):
        specs = batch()
        flaky_fingerprint = specs[1].fingerprint()

        def hook(fp: str, attempt: int) -> None:
            if fp == flaky_fingerprint and attempt == 1:
                raise InjectedFault("doomed first attempt")

        runner_module._FAULT_HOOK = hook
        run_many(
            specs,
            cache_dir=tmp_path / "cache",
            ledger_dir=tmp_path / "ledger",
            on_error=FailurePolicy(on_error="capture", retries=1),
        )
        runner_module._FAULT_HOOK = None
        clear_result_cache()  # force the replay onto the disk layer
        run_many(
            specs, cache_dir=tmp_path / "cache", ledger_dir=tmp_path / "ledger"
        )
        summary = rollup(tmp_path / "ledger")
        assert summary["cache"] == {
            "hits": 3,
            "executions": 3,
            "hit_rate": 0.5,
        }
        assert summary["retries"] == {
            "specs_retried": 1,
            "extra_attempts": 1,
            "retry_rate": round(1 / 6, 4),
        }
        retried_group = summary["by_algorithm"]["greedy_sequential"]
        assert retried_group["retried"] == 1

    def test_failed_records_and_dead_letters(self, tmp_path):
        specs = batch()
        doomed = specs[2].fingerprint()

        def hook(fp: str, attempt: int) -> None:
            if fp == doomed:
                raise InjectedFault(f"poisoned {fp[:12]}")

        job_dir = tmp_path / "job"
        runner_module._FAULT_HOOK = hook
        run_sharded(
            specs,
            job_dir,
            shards=2,
            local_workers=0,
            on_error=FailurePolicy(on_error="capture", retries=1),
        )
        summary = rollup(job_dir)
        assert summary["failures"]["failed_records"] == 1
        (letter,) = summary["failures"]["dead_letters"]
        assert letter["fingerprint"] == doomed
        assert letter["error_type"] == "InjectedFault"
        assert letter["attempts"] == 2
        rendered = format_report(summary)
        assert f"dead letter {doomed[:12]}" in rendered

    def test_empty_directory_rolls_to_zero(self, tmp_path):
        summary = rollup(tmp_path)
        assert summary["run_records"] == 0
        assert summary["cache"]["hit_rate"] is None
        assert summary["by_algorithm"] == {}


class TestRetryAdvice:
    """Ledger-driven budgeting: flaky recoveries vs poison specs."""

    def test_flaky_recovery_suggests_the_observed_depth(self, tmp_path):
        specs = batch()
        flaky = specs[1].fingerprint()

        def hook(fp: str, attempt: int) -> None:
            if fp == flaky and attempt <= 2:
                raise InjectedFault("doomed below attempt 3")

        runner_module._FAULT_HOOK = hook
        run_many(
            specs,
            cache=False,
            ledger_dir=tmp_path,
            on_error=FailurePolicy(on_error="capture", retries=3),
        )
        advice = rollup(tmp_path)["retry_advice"]
        # The flaky spec needed 2 retries to land; nothing was poison.
        assert advice["suggested_retries"] == 2
        assert advice["poison_specs"] == 0
        group = advice["by_group"]["greedy_sequential"]
        assert group["terminal"] == 1
        assert group["flaky_recoveries"] == 1
        assert group["retries_needed"] == 2
        assert group["flaky_rate"] == 1.0
        assert group["poison_rate"] == 0.0
        clean = advice["by_group"]["bko20"]
        assert clean["flaky_recoveries"] == 0
        assert clean["flaky_rate"] == 0.0

    def test_poison_specs_are_not_a_retry_problem(self, tmp_path):
        specs = batch()
        doomed = specs[2].fingerprint()

        def hook(fp: str, attempt: int) -> None:
            if fp == doomed:
                raise InjectedFault("poisoned for good")

        runner_module._FAULT_HOOK = hook
        run_many(
            specs,
            cache=False,
            ledger_dir=tmp_path,
            on_error=FailurePolicy(on_error="capture", retries=2),
        )
        advice = rollup(tmp_path)["retry_advice"]
        assert advice["suggested_retries"] == 0
        assert advice["poison_specs"] == 1
        group = advice["by_group"]["linial_greedy"]
        assert group["poison"] == 1
        assert group["poison_rate"] == 1.0
        assert group["retries_needed"] == 0

    def test_cache_replays_do_not_dilute_the_rates(self, tmp_path):
        specs = batch()[:1]
        run_many(specs, cache_dir=tmp_path / "cache", ledger_dir=tmp_path)
        clear_result_cache()
        run_many(specs, cache_dir=tmp_path / "cache", ledger_dir=tmp_path)
        advice = rollup(tmp_path)["retry_advice"]
        # Only the terminal (executed/failed) record counts; the
        # cache_disk replay is not a second data point.
        assert advice["by_group"]["bko20"]["terminal"] == 1

    def test_all_clean_run_gives_quiet_advice(self, tmp_path):
        run_many(batch(), cache=False, ledger_dir=tmp_path)
        summary = rollup(tmp_path)
        assert summary["retry_advice"]["suggested_retries"] == 0
        assert summary["retry_advice"]["poison_specs"] == 0
        assert "retry advice:" not in format_report(summary)

    def test_format_report_renders_both_advice_lines(self, tmp_path):
        specs = batch()
        flaky = specs[0].fingerprint()
        doomed = specs[2].fingerprint()

        def hook(fp: str, attempt: int) -> None:
            if fp == flaky and attempt == 1:
                raise InjectedFault("doomed first attempt")
            if fp == doomed:
                raise InjectedFault("poisoned for good")

        runner_module._FAULT_HOOK = hook
        run_many(
            specs,
            cache=False,
            ledger_dir=tmp_path,
            on_error=FailurePolicy(on_error="capture", retries=1),
        )
        text = format_report(rollup(tmp_path))
        assert (
            "retry advice: 1 flaky spec(s) recovered within 1 retry — "
            "suggested FailurePolicy(retries=1)" in text
        )
        assert "1 poison spec(s) failed every attempt" in text

    def test_poison_only_report_says_retries_wont_help(self, tmp_path):
        spec = batch()[2]

        def hook(fp: str, attempt: int) -> None:
            raise InjectedFault("poisoned for good")

        runner_module._FAULT_HOOK = hook
        run_many(
            [spec],
            cache=False,
            ledger_dir=tmp_path,
            on_error=FailurePolicy(on_error="capture", retries=1),
        )
        text = format_report(rollup(tmp_path))
        assert "raising retries won't help" in text


class TestFormatReport:
    def test_renders_every_table(self, tmp_path):
        job_dir = tmp_path / "job"
        run_sharded(batch(), job_dir, shards=2, local_workers=0)
        text = format_report(rollup(job_dir))
        assert "per-algorithm / per-scenario" in text
        assert "cache / retry" in text
        assert "throughput per worker" in text
        assert "bko20" in text


class TestSmoke:
    def test_report_smoke_passes_and_summarizes(self):
        summary = report_smoke()
        assert summary["specs"] == 5
        assert summary["specs_distinct"] == 4
        assert summary["workers"] >= 1
        assert summary["report_chars"] > 0

    def test_telemetry_error_is_a_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(TelemetryError, ReproError)


def _repro_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )


class TestCli:
    def test_report_command_on_a_job_dir(self, tmp_path):
        job_dir = tmp_path / "job"
        run_sharded(batch(), job_dir, shards=2, local_workers=0)
        proc = _repro_cli("report", str(job_dir))
        assert proc.returncode == 0, proc.stderr
        assert "per-algorithm / per-scenario" in proc.stdout

        as_json = _repro_cli("report", str(job_dir), "--json")
        assert as_json.returncode == 0, as_json.stderr
        payload = json.loads(as_json.stdout)
        assert payload["specs_distinct"] == 3

    def test_report_command_on_empty_dir_exits_nonzero(self, tmp_path):
        proc = _repro_cli("report", str(tmp_path))
        assert proc.returncode == 1
        assert "no run records" in proc.stdout

    def test_report_command_requires_a_target(self):
        proc = _repro_cli("report")
        assert proc.returncode != 0

    def test_shard_status_joins_ledger_columns(self, tmp_path):
        job_dir = tmp_path / "job"
        run_sharded(batch(), job_dir, shards=2, local_workers=0)
        status = job_status(job_dir)
        # Only shards that actually recorded runs appear (assignment is
        # fingerprint % shards, so a shard may legitimately be empty).
        assert status["ledger"]
        assert set(status["ledger"]) <= {"0", "1"}
        total_recorded = sum(
            entry["specs_recorded"] for entry in status["ledger"].values()
        )
        assert total_recorded == 3
        for entry in status["ledger"].values():
            assert entry["retries"] == 0
            assert entry["failed"] == 0
        proc = _repro_cli("shard", "status", "--job-dir", str(job_dir))
        assert proc.returncode == 0, proc.stderr
        assert "attempts" in proc.stdout
        assert "cache-hits" in proc.stdout
