"""Tests for the iterated-logarithm helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.utils.logstar import ceil_log, ceil_log2, ilog2, log_star


class TestIlog2:
    def test_small_values(self):
        assert [ilog2(x) for x in (1, 2, 3, 4, 7, 8)] == [0, 1, 1, 2, 2, 3]

    def test_powers_of_two(self):
        for k in range(60):
            assert ilog2(2**k) == k

    def test_huge_integers_are_exact(self):
        # float-based log2 would misround here
        assert ilog2(2**500 - 1) == 499
        assert ilog2(2**500) == 500

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            ilog2(0)
        with pytest.raises(ParameterError):
            ilog2(-4)

    @given(st.integers(min_value=1, max_value=10**30))
    def test_matches_definition(self, x):
        k = ilog2(x)
        assert 2**k <= x < 2 ** (k + 1)


class TestCeilLog2:
    def test_small_values(self):
        assert [ceil_log2(x) for x in (1, 2, 3, 4, 5, 8, 9)] == [0, 1, 2, 2, 3, 3, 4]

    @given(st.integers(min_value=1, max_value=10**18))
    def test_matches_definition(self, x):
        k = ceil_log2(x)
        assert 2**k >= x
        assert k == 0 or 2 ** (k - 1) < x


class TestLogStar:
    def test_anchor_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 0
        assert log_star(4) == 1
        assert log_star(16) == 2
        assert log_star(65536) == 3
        assert log_star(2**65536) == 4

    def test_tower_property(self):
        # log*(2^x) = log*(x) + 1 for x > 2
        for x in (5, 100, 65536):
            assert log_star(2**x) == log_star(x) + 1

    def test_monotone_nondecreasing(self):
        values = [log_star(x) for x in range(1, 2000)]
        assert values == sorted(values)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            log_star(0)

    def test_grows_incredibly_slowly(self):
        assert log_star(10**80) <= 5


class TestCeilLog:
    def test_exact_powers(self):
        assert ceil_log(3, 27) == 3
        assert ceil_log(10, 10**6) == 6

    def test_non_powers_round_up(self):
        assert ceil_log(3, 28) == 4
        assert ceil_log(2, 5) == 3

    def test_one_returns_zero(self):
        assert ceil_log(7, 1) == 0

    def test_rejects_bad_base(self):
        with pytest.raises(ParameterError):
            ceil_log(1, 10)

    @given(
        st.integers(min_value=2, max_value=50),
        st.integers(min_value=1, max_value=10**12),
    )
    def test_matches_definition(self, base, x):
        k = ceil_log(base, x)
        assert base**k >= x
        assert k == 0 or base ** (k - 1) < x
