"""Tests for the central graph-family registry."""

import networkx as nx
import pytest

from repro.errors import ParameterError
from repro.graphs.families import (
    build_family,
    family_names,
    family_registry,
    feasible_regular_order,
    get_family,
)
from repro.graphs.generators import standard_families


class TestRegistry:
    def test_families_build_deterministically(self):
        for name in family_names():
            a = build_family(name, 4, seed=3)
            b = build_family(name, 4, seed=3)
            assert isinstance(a, nx.Graph)
            assert a.number_of_edges() >= 1
            assert set(a.edges()) == set(b.edges()), name

    def test_small_sizes_never_reject(self):
        # Size floors make every (size >= 1) request feasible.
        for name in family_names():
            for size in (1, 2, 3):
                build_family(name, size, seed=1)

    def test_metadata_present(self):
        for family in family_registry().values():
            assert family.size_meaning
            assert family.description

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown family"):
            get_family("nope")


class TestRandomRegularFeasibility:
    def test_odd_products_are_adjusted(self):
        # degree 3 with n=3*4=12 is fine, but degree 3 with an odd n
        # must be bumped: the registry adjusts n, never the degree.
        degree, n = feasible_regular_order(3, 9)
        assert degree == 3 and n == 10
        assert (degree * n) % 2 == 0

    def test_order_floor(self):
        degree, n = feasible_regular_order(5, 2)
        assert n > degree
        assert (degree * n) % 2 == 0

    def test_every_size_builds_a_regular_graph(self):
        for size in range(1, 8):
            graph = build_family("random_regular", size, seed=5)
            degrees = {d for _, d in graph.degree()}
            assert degrees == {max(1, size)}

    def test_negative_degree_rejected(self):
        with pytest.raises(ParameterError):
            feasible_regular_order(-1, 4)


class TestStandardFamiliesDelegation:
    def test_standard_families_route_through_registry(self):
        # Same labels as before the registry existed, and every build
        # still succeeds at the benchmark sweep sizes.
        families = standard_families(seed=5)
        labels = [family.name for family in families]
        assert labels == [
            "cycle[n]",
            "complete[n]",
            "complete_bipartite[n,n]",
            "random_regular[d, n=4d]",
            "torus[n,n]",
            "blow_up_cycle[6, g]",
        ]
        for family in families:
            assert family.build(4).number_of_edges() > 0

    def test_random_regular_matches_registry_build(self):
        family = next(
            f for f in standard_families(seed=5) if f.name.startswith("random_regular")
        )
        assert set(family.build(4).edges()) == set(
            build_family("random_regular", 4, seed=5).edges()
        )
