"""The randomized_luby scenario program: a distributed trial protocol."""

from __future__ import annotations

import pytest

from repro.api import InstanceSpec, RunSpec, ScenarioSpec, run
from repro.coloring.verify import check_proper_edge_coloring
from repro.errors import ScenarioError
from repro.graphs.generators import complete_bipartite, grid_graph
from repro.scenarios import get_program, run_under_model, scenario_capable
from repro.scenarios.executor import conflict_count
from repro.scenarios.programs import RandomizedTrialAlgorithm  # noqa: F401


def luby_spec(model: str, *, size: int = 4, seed: int = 7, **params) -> RunSpec:
    return RunSpec(
        instance=InstanceSpec(family="complete_bipartite", size=size, seed=2),
        algorithm="randomized_luby",
        scenario=ScenarioSpec(model=model, seed=seed, params=params),
    )


class TestRegistration:
    def test_randomized_luby_is_scenario_capable(self):
        assert "randomized_luby" in scenario_capable()

    def test_program_declares_its_run_parameters(self):
        program = get_program("randomized_luby")
        assert program.params == frozenset({"max_rounds", "patience"})

    def test_unknown_run_parameter_names_the_allowed_set(self):
        spec = RunSpec(
            instance=InstanceSpec(family="complete_bipartite", size=3, seed=2),
            algorithm="randomized_luby",
            scenario=ScenarioSpec(model="lossy_links", seed=1),
            params={"patienec": 5},
        )
        with pytest.raises(ScenarioError, match="patience"):
            run(spec, cache=False)

    def test_other_programs_still_reject_patience(self):
        spec = RunSpec(
            instance=InstanceSpec(family="complete_bipartite", size=3, seed=2),
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="lossy_links", seed=1),
            params={"patience": 5},
        )
        with pytest.raises(ScenarioError, match="max_rounds"):
            run(spec, cache=False)


class TestCleanWorld:
    def test_hook_free_run_yields_a_proper_coloring(self):
        # Engine-level: the program under the identity model must color
        # the whole line graph properly within the 2Δ̄-1 palette.
        graph = grid_graph(3, 4)
        program = get_program("randomized_luby")
        from repro.scenarios.registry import get_model

        hook = get_model("bounded_async").build_hook(0, {"quota": 10**9})
        outcome = program.runner(graph, seed=3, hook=hook)
        assert len(outcome.coloring) == graph.number_of_edges()
        check_proper_edge_coloring(graph, outcome.coloring)
        assert outcome.uncolored_survivors == 0
        assert outcome.crashed_edges == []

    def test_empty_graph(self):
        import networkx as nx

        program = get_program("randomized_luby")
        outcome = program.runner(nx.empty_graph(4), seed=1, hook=None)
        assert outcome.coloring == {} and outcome.rounds == 0


class TestDeterminism:
    @pytest.mark.parametrize(
        "model,params",
        [
            ("lossy_links", {"drop": 0.25}),
            ("crash_stop", {"f": 3}),
            ("bounded_async", {"quota": 3}),
        ],
    )
    def test_fixed_seeds_reproduce_byte_identically(self, model, params):
        first = run(luby_spec(model, **params), cache=False)
        second = run(luby_spec(model, **params), cache=False)
        assert first.result_fingerprint() == second.result_fingerprint()

    def test_different_adversary_seed_same_dice(self):
        # The run seed fixes the agents' RNG; the adversary seed only
        # reorders/drops deliveries.  Two adversary seeds must disagree
        # on the schedule (with overwhelming probability) while both
        # runs stay valid — pinning that per-agent randomness is not
        # consumed from the adversary's stream.
        a = run(luby_spec("lossy_links", seed=1, drop=0.3), cache=False)
        b = run(luby_spec("lossy_links", seed=2, drop=0.3), cache=False)
        assert a.details["messages_dropped"] != b.details["messages_dropped"]

    def test_run_seed_changes_the_trials(self):
        base = luby_spec("bounded_async", quota=4)
        other = RunSpec(
            instance=base.instance,
            algorithm="randomized_luby",
            run_seed=99,
            scenario=base.scenario,
        )
        a = run(base, cache=False)
        b = run(other, cache=False)
        assert a.result_fingerprint() != b.result_fingerprint()


class TestDegradation:
    def test_crash_stop_excludes_crashed_edges_and_stays_quiescent(self):
        result = run(luby_spec("crash_stop", f=3, horizon=2), cache=False)
        details = result.details
        assert details["aborted"] is None  # patience: crashes never wedge
        assert details["crashed_count"] == len(details["crashed_edges"])
        for token in details["crashed_edges"]:
            assert all(token != t for t in result.coloring)

    def test_lossy_links_conflicts_are_recomputed_truthfully(self):
        result = run(luby_spec("lossy_links", drop=0.3, size=5), cache=False)
        graph = complete_bipartite(5, 5)
        assert result.details["conflicts_on_survivors"] == conflict_count(
            graph, result.coloring
        )

    def test_patience_parameter_reaches_the_program(self):
        # horizon=1 pins the crashes to round 1, before quiescence, so
        # the crashed agents' neighbors must quiesce via patience —
        # more patience therefore means strictly later quiescence.
        scenario = ScenarioSpec(
            model="crash_stop", seed=7, params={"f": 2, "horizon": 1}
        )
        instance = InstanceSpec(family="complete_bipartite", size=4, seed=2)
        quick = run(
            RunSpec(
                instance=instance,
                algorithm="randomized_luby",
                scenario=scenario,
            ),
            cache=False,
        )
        slow = run(
            RunSpec(
                instance=instance,
                algorithm="randomized_luby",
                scenario=scenario,
                params={"patience": 12},
            ),
            cache=False,
        )
        assert quick.details["crashed_count"] == 2
        assert slow.details["rounds_to_quiescence"] > quick.details[
            "rounds_to_quiescence"
        ]


class TestEngineEntry:
    def test_run_under_model_drives_the_algorithm_directly(self):
        from repro.graphs.properties import assign_unique_ids
        from repro.model.edge_network import line_graph_network
        from repro.graphs.edges import edge_set

        graph = complete_bipartite(3, 3)
        node_ids = assign_unique_ids(graph, seed=3)
        network = line_graph_network(graph, node_ids=node_ids)
        palette = frozenset(range(1, 2 * 3))
        lists = {edge: palette for edge in edge_set(graph)}
        execution = run_under_model(
            network,
            RandomizedTrialAlgorithm(lists, seed=3),
            model="synchronous",
        )
        coloring = {
            edge: color
            for edge, color in execution.outputs.items()
            if color is not None
        }
        assert len(coloring) == graph.number_of_edges()
        check_proper_edge_coloring(graph, coloring)
