"""Tests for the message-passing Section 4.1 program, cross-validated
against the functional defective coloring."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring.verify import measure_defects
from repro.graphs.edges import edge_set
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    random_regular,
    star_graph,
)
from repro.graphs.line_graph import edge_degree
from repro.primitives.defective import defect_bound
from repro.primitives.defective_node_algorithm import (
    run_distributed_defective_coloring,
)
from repro.utils.logstar import log_star


@pytest.mark.parametrize("beta", [1, 2, 3])
@pytest.mark.parametrize(
    "make_graph",
    [
        lambda: complete_graph(8),
        lambda: complete_bipartite(5, 5),
        lambda: star_graph(12),
        lambda: random_regular(6, 16, seed=4),
    ],
)
def test_distributed_defect_bounds(make_graph, beta):
    """The distributed run must satisfy the same paper bounds as the
    functional form: defect <= deg(e)/2β, O(β²) colors."""
    graph = make_graph()
    coloring, _execution, color_count = run_distributed_defective_coloring(
        graph, beta, seed=2
    )
    assert set(coloring) == set(edge_set(graph))
    assert all(0 <= c < color_count for c in coloring.values())
    defects = measure_defects(graph, coloring)
    for edge in edge_set(graph):
        assert defects[edge] <= defect_bound(edge_degree(graph, edge), beta)


class TestRoundEnvelope:
    def test_logstar_rounds(self):
        graph = random_regular(8, 24, seed=3)
        _coloring, execution, _cc = run_distributed_defective_coloring(
            graph, 2, seed=5
        )
        # 1 announce + O(log* X) reduction + <= 22 shift rounds
        x = 24 * 24 * 26  # edge-ID space upper bound
        assert execution.rounds <= 1 + log_star(x) + 3 + 22

    def test_rounds_flat_in_n(self):
        rounds = []
        for n in (16, 64, 128):
            graph = random_regular(4, n, seed=7)
            _c, execution, _cc = run_distributed_defective_coloring(
                graph, 2, seed=1
            )
            rounds.append(execution.rounds)
        assert max(rounds) - min(rounds) <= 3

    def test_messages_bounded(self):
        graph = complete_bipartite(6, 6)
        _c, execution, _cc = run_distributed_defective_coloring(
            graph, 2, seed=1
        )
        edges = graph.number_of_edges()
        # announce round: one message per line-graph arc; later rounds
        # only between conflict partners (degree <= 2)
        assert execution.messages_sent <= edges * 20 + 20 * edges


class TestAgreementWithFunctionalForm:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10**5))
    def test_same_guarantees_on_random_instances(self, seed):
        from repro.core.solver import compute_initial_edge_coloring
        from repro.primitives.defective import defective_edge_coloring

        graph = random_regular(5, 12, seed=seed % 61)
        beta = 1 + seed % 3
        distributed, _exec, dist_count = run_distributed_defective_coloring(
            graph, beta, seed=seed % 17
        )
        initial, _p, _r = compute_initial_edge_coloring(graph, seed=seed % 17)
        functional = defective_edge_coloring(graph, beta, initial)
        # identical color-space encoding
        assert dist_count == functional.color_count
        # identical grouping -> identical temporary colors -> both
        # colorings agree modulo the 3-coloring of the chains
        for edge in edge_set(graph):
            assert distributed[edge] // 3 == functional.colors[edge] // 3
