"""Tests for line-graph views and edge degrees."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError
from repro.graphs.edges import edge_key, edge_set
from repro.graphs.generators import random_regular
from repro.graphs.line_graph import (
    conflicting_pairs,
    edge_degree,
    induced_edge_degrees,
    line_graph,
    line_graph_adjacency,
    max_edge_degree,
)


class TestEdgeDegree:
    def test_path_middle_edge(self):
        g = nx.path_graph(4)
        assert edge_degree(g, (1, 2)) == 2
        assert edge_degree(g, (0, 1)) == 1

    def test_complete_graph(self):
        g = nx.complete_graph(5)
        # deg(e) = 2(n-1) - 2 = 6
        assert all(edge_degree(g, e) == 6 for e in edge_set(g))

    def test_rejects_missing_edge(self):
        g = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            edge_degree(g, (0, 2))


class TestMaxEdgeDegree:
    def test_empty(self):
        assert max_edge_degree(nx.Graph()) == 0

    def test_single_edge(self):
        g = nx.Graph([(0, 1)])
        assert max_edge_degree(g) == 0

    def test_star(self):
        g = nx.star_graph(5)
        assert max_edge_degree(g) == 4

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=2, max_value=8))
    def test_bounded_by_2_delta_minus_2(self, d):
        g = random_regular(d, 2 * d + (2 * d * d) % 2, seed=1)
        assert max_edge_degree(g) <= 2 * d - 2


class TestLineGraphAdjacency:
    def test_matches_networkx_line_graph(self):
        g = nx.petersen_graph()
        ours = line_graph_adjacency(g)
        theirs = nx.line_graph(g)
        for edge, neighbors in ours.items():
            expected = {edge_key(*e) for e in theirs.neighbors(edge)}
            assert set(neighbors) == expected

    def test_degrees_match_edge_degree(self):
        g = nx.barbell_graph(4, 2)
        adjacency = line_graph_adjacency(g)
        for edge, neighbors in adjacency.items():
            assert len(neighbors) == edge_degree(g, edge)

    def test_line_graph_nodes_are_canonical_edges(self):
        g = nx.cycle_graph(5)
        lg = line_graph(g)
        assert set(lg.nodes()) == set(edge_set(g))


class TestInducedEdgeDegrees:
    def test_subset_degrees(self):
        g = nx.path_graph(5)  # edges (0,1),(1,2),(2,3),(3,4)
        degrees = induced_edge_degrees(g, [(0, 1), (1, 2), (3, 4)])
        assert degrees[(0, 1)] == 1
        assert degrees[(1, 2)] == 1
        assert degrees[(3, 4)] == 0

    def test_rejects_foreign_edge(self):
        g = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            induced_edge_degrees(g, [(0, 2)])


class TestConflictingPairs:
    def test_proper_coloring_has_none(self):
        g = nx.cycle_graph(4)
        coloring = {(0, 1): 1, (1, 2): 2, (2, 3): 1, (0, 3): 2}
        assert conflicting_pairs(g, coloring) == []

    def test_detects_conflicts(self):
        g = nx.path_graph(3)
        coloring = {(0, 1): 1, (1, 2): 1}
        assert len(conflicting_pairs(g, coloring)) == 1

    def test_partial_assignments_allowed(self):
        g = nx.path_graph(4)
        assert conflicting_pairs(g, {(0, 1): 1}) == []
