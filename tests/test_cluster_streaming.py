"""The PR's cluster satellites: streaming merge, auto shards, retry, timing.

* :func:`~repro.cluster.coordinator.run_sharded_iter` yields every
  batch index exactly once with payloads byte-identical to
  ``run_sharded`` / serial ``run_many`` (same merge discipline:
  duplicates get independent deep copies), and a completed job replays
  entirely from sealed shards — zero re-executions.
* ``shards="auto"`` sizes the plan from CPU count and batch width, and
  the *resolved* integer is what the manifest records.
* :func:`~repro.cluster.coordinator.retry_failed` re-queues exactly
  the quarantined specs: dead letters and their shards' sealed results
  (and timing sidecars) go away, everything else stays byte-identical.
* Workers leave observational per-shard timing sidecars that
  ``job_status`` folds into a ``timing`` map (wall-clock, specs/sec).
"""

from __future__ import annotations

import copy

import pytest

from repro.api import FailurePolicy, InstanceSpec, RunSpec, run_many
from repro.api.runner import clear_result_cache
from repro.cluster import (
    ensure_plan,
    job_status,
    load_shard_timing,
    merge_results,
    resolve_shards,
    retry_failed,
    run_sharded,
    run_sharded_iter,
    timing_path,
    work_loop,
)
from repro.cluster.planner import load_plan, plan_shards
from repro.cluster.queue import result_path
from repro.cluster.worker import dead_letter_path
from repro.errors import ClusterError
from repro.results import canonical_json


def small_batch() -> list[RunSpec]:
    instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
    other = InstanceSpec(family="grid", size=3, seed=1)
    specs = [
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(instance=other, algorithm="greedy_sequential"),
        RunSpec(instance=instance, algorithm="linial_greedy"),
        RunSpec(instance=other, algorithm="linial_greedy"),
    ]
    return specs + [specs[0]]  # a duplicate: merge fans one result out


def serial_payloads(specs):
    clear_result_cache()
    serial = run_many(specs, cache=False)
    clear_result_cache()
    return [canonical_json(result.to_dict()) for result in serial]


class TestRunShardedIter:
    def test_yields_every_index_once_byte_identical_to_serial(self, tmp_path):
        specs = small_batch()
        expected = serial_payloads(specs)
        seen = {}
        for index, result in run_sharded_iter(
            specs, tmp_path / "job", shards=2
        ):
            assert index not in seen, f"index {index} emitted twice"
            seen[index] = canonical_json(result.to_dict())
        assert sorted(seen) == list(range(len(specs)))
        assert [seen[i] for i in range(len(specs))] == expected

    def test_duplicate_slots_get_independent_copies(self, tmp_path):
        specs = small_batch()
        results = dict(run_sharded_iter(specs, tmp_path / "job", shards=2))
        first, dupe = results[0], results[len(specs) - 1]
        assert canonical_json(first.to_dict()) == canonical_json(
            dupe.to_dict()
        )
        assert first is not dupe

    def test_completed_job_replays_without_reexecution(self, tmp_path):
        from repro.api import runner as runner_module

        specs = small_batch()
        job = tmp_path / "job"
        baseline = dict(run_sharded_iter(specs, job, shards=2))
        executions = []
        previous = runner_module._FAULT_HOOK
        runner_module._FAULT_HOOK = lambda fp, attempt: executions.append(fp)
        try:
            replay = dict(run_sharded_iter(specs, job, shards=2))
        finally:
            runner_module._FAULT_HOOK = previous
        assert executions == []
        assert {
            i: canonical_json(r.to_dict()) for i, r in replay.items()
        } == {i: canonical_json(r.to_dict()) for i, r in baseline.items()}

    def test_run_sharded_is_the_drained_iterator(self, tmp_path):
        specs = small_batch()
        expected = serial_payloads(specs)
        ordered = run_sharded(specs, tmp_path / "job", shards=2)
        assert [canonical_json(r.to_dict()) for r in ordered] == expected
        # ...and byte-identical to the classic merge of the same job dir.
        merged = merge_results(None, tmp_path / "job")
        assert [canonical_json(r.to_dict()) for r in merged] == expected


class TestAutoShards:
    def test_resolve_auto_is_min_of_cpus_and_batch(self):
        assert resolve_shards("auto", 10, cpu_count=4) == 4
        assert resolve_shards("auto", 3, cpu_count=8) == 3
        assert resolve_shards("auto", 0, cpu_count=8) == 1  # never zero
        assert resolve_shards(5, 2) == 5  # explicit counts pass through

    def test_resolve_rejects_non_auto_strings(self):
        # Strings other than "auto" are the CLI's job to coerce; the
        # library refuses them rather than guessing.
        with pytest.raises(ClusterError):
            resolve_shards("many", 4)
        with pytest.raises(ClusterError):
            resolve_shards("7", 4)

    def test_manifest_records_the_resolved_integer(self, tmp_path):
        specs = small_batch()
        plan = ensure_plan(specs, tmp_path / "job", shards="auto")
        assert isinstance(plan.shards, int)
        assert plan.shards >= 1
        reloaded = load_plan(tmp_path / "job")
        assert reloaded.shards == plan.shards
        assert reloaded.plan_fingerprint() == plan.plan_fingerprint()

    def test_auto_plan_equals_explicit_plan_of_same_width(self):
        specs = small_batch()
        auto = plan_shards(specs, shards="auto")
        explicit = plan_shards(specs, shards=auto.shards)
        assert auto.plan_fingerprint() == explicit.plan_fingerprint()


def poisoned_batch():
    specs = small_batch()
    poison = RunSpec(
        instance=InstanceSpec(family="path", size=5, seed=3),
        algorithm="no_such_algorithm",
    )
    return specs + [poison], poison


class TestRetryFailed:
    def drain(self, specs, job, **kwargs):
        ensure_plan(specs, job, shards=2)
        return work_loop(
            job, on_error=FailurePolicy(on_error="capture"), **kwargs
        )

    def test_requeues_only_quarantined_specs(self, tmp_path):
        specs, poison = poisoned_batch()
        job = tmp_path / "job"
        self.drain(specs, job)
        target = poison.fingerprint()
        status = job_status(job)
        assert list(status["failed"]) == [target]
        survivors_before = {
            canonical_json(r.to_dict())
            for r in merge_results(None, job)
            if not r.is_failure()
        }

        summary = retry_failed(job)
        assert summary["requeued"] == [target]
        assert summary["remaining_failures"] == []
        assert not dead_letter_path(job, target).exists()
        plan = load_plan(job)
        poisoned_shard = plan.shard_of(target)
        assert summary["shards_reset"] == [poisoned_shard]
        # Only the poisoned shard's seal went away.
        assert not result_path(job, poisoned_shard).exists()
        for shard in range(plan.shards):
            if shard != poisoned_shard:
                assert result_path(job, shard).exists()

        # Re-drain: the poison fails again (still unregistered), the
        # survivors come back byte-identical.
        self.drain(specs, job)
        status = job_status(job)
        assert status["complete"] is True
        assert list(status["failed"]) == [target]
        survivors_after = {
            canonical_json(r.to_dict())
            for r in merge_results(None, job)
            if not r.is_failure()
        }
        assert survivors_after == survivors_before

    def test_fingerprint_filter_limits_the_retry(self, tmp_path):
        specs, poison = poisoned_batch()
        job = tmp_path / "job"
        self.drain(specs, job)
        summary = retry_failed(job, fingerprints=["0" * 64])
        assert summary["requeued"] == []
        assert summary["remaining_failures"] == [poison.fingerprint()]
        assert dead_letter_path(job, poison.fingerprint()).exists()
        assert job_status(job)["complete"] is True  # nothing was reset

    def test_retry_on_clean_job_is_a_no_op(self, tmp_path):
        specs = small_batch()
        job = tmp_path / "job"
        run_sharded(specs, job, shards=2)
        summary = retry_failed(job)
        assert summary["requeued"] == []
        assert summary["shards_reset"] == []
        assert job_status(job)["complete"] is True


class TestShardTiming:
    def test_workers_leave_timing_sidecars(self, tmp_path):
        specs = small_batch()
        job = tmp_path / "job"
        plan = ensure_plan(specs, job, shards=2)
        work_loop(job)
        for shard in range(plan.shards):
            assert timing_path(job, shard).exists()
            timing = load_shard_timing(
                job, shard, plan_fingerprint=plan.plan_fingerprint()
            )
            assert timing is not None
            assert timing["wall_clock_s"] >= 0
            assert timing["specs_total"] == len(plan.assignment[shard])

    def test_job_status_folds_timing_into_done_shards(self, tmp_path):
        specs = small_batch()
        job = tmp_path / "job"
        run_sharded(specs, job, shards=2)
        status = job_status(job)
        assert set(status["timing"]) == {"0", "1"}  # JSON-safe str keys
        for entry in status["timing"].values():
            assert entry["state"] == "done"
            assert entry["wall_clock_s"] >= 0
            assert entry["specs_executed"] >= 0
            assert entry["worker"]
        executed = sum(
            entry["specs_executed"] for entry in status["timing"].values()
        )
        assert executed == len({spec.fingerprint() for spec in specs})

    def test_foreign_timing_sidecar_is_ignored(self, tmp_path):
        specs = small_batch()
        job = tmp_path / "job"
        plan = ensure_plan(specs, job, shards=2)
        work_loop(job)
        assert (
            load_shard_timing(job, 0, plan_fingerprint="f" * 64) is None
        )
        assert (
            load_shard_timing(
                job, 1, plan_fingerprint=plan.plan_fingerprint()
            )
            is not None
        )
