"""Tests for the unified algorithm registry and the policy registry."""

import pytest

from repro.api import (
    PAPER_ALGORITHM,
    PAPER_LABEL,
    Algorithm,
    algorithm_names,
    algorithm_registry,
    get_algorithm,
    run_algorithm,
)
from repro.baselines.registry import all_baselines, run_baseline
from repro.core.params import (
    ParameterPolicy,
    machinery_policy,
    named_policies,
    resolve_policy,
)
from repro.core.solver import solve_edge_coloring
from repro.errors import ParameterError
from repro.graphs.generators import complete_bipartite


class TestRegistryCompleteness:
    def test_every_baseline_is_reachable(self):
        registry = algorithm_registry()
        for name in all_baselines():
            assert name in registry
            assert registry[name].kind == "baseline"

    def test_paper_solver_is_registered_first(self):
        names = algorithm_names()
        assert names[0] == PAPER_ALGORITHM
        assert get_algorithm(PAPER_ALGORITHM).label == PAPER_LABEL
        assert get_algorithm(PAPER_ALGORITHM).kind == "paper"

    def test_entries_satisfy_the_algorithm_protocol(self):
        for info in algorithm_registry().values():
            assert isinstance(info, Algorithm)
            assert info.description

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="bko20"):
            get_algorithm("nope")


class TestUnifiedExecution:
    def test_baseline_through_registry_matches_direct_call(self):
        graph = complete_bipartite(3, 3)
        via_registry = run_algorithm("kuhn_wattenhofer", graph, seed=2)
        direct = run_baseline("kuhn_wattenhofer", graph, seed=2)
        assert via_registry.rounds == direct.rounds
        assert via_registry.coloring == direct.coloring

    def test_paper_through_registry_matches_direct_call(self):
        graph = complete_bipartite(3, 3)
        via_registry = run_algorithm(PAPER_ALGORITHM, graph, seed=2)
        direct = solve_edge_coloring(graph, seed=2)
        assert via_registry.rounds == direct.rounds
        assert via_registry.coloring == direct.coloring

    def test_paper_accepts_policy_by_name_and_object(self):
        graph = complete_bipartite(3, 3)
        by_name = run_algorithm(PAPER_ALGORITHM, graph, seed=2, policy="machinery")
        by_object = run_algorithm(
            PAPER_ALGORITHM, graph, seed=2, policy=machinery_policy()
        )
        assert by_name.rounds == by_object.rounds
        assert by_name.policy_name == by_object.policy_name

    def test_baselines_reject_policies(self):
        graph = complete_bipartite(2, 2)
        with pytest.raises(ParameterError, match="no parameter policy"):
            run_algorithm("linial_greedy", graph, seed=1, policy="scaled")


class TestPolicyRegistry:
    def test_expected_names_present(self):
        assert set(named_policies()) == {"scaled", "paper", "kuhn20", "machinery"}

    def test_factories_produce_policies(self):
        for factory in named_policies().values():
            assert isinstance(factory(), ParameterPolicy)

    def test_resolve_by_name_object_and_none(self):
        assert resolve_policy(None) is None
        policy = machinery_policy()
        assert resolve_policy(policy) is policy
        assert resolve_policy("machinery").name == policy.name

    def test_resolve_unknown_name(self):
        with pytest.raises(ParameterError, match="unknown policy"):
            resolve_policy("nope")
