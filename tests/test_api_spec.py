"""Tests for the declarative specs: round-trips and fingerprints."""

import json

import pytest

from repro.api import InstanceSpec, RunSpec
from repro.errors import InvalidInstanceError
from repro.graphs.edges import edge_set
from repro.graphs.generators import complete_bipartite
from repro.graphs.io import write_edge_list


class TestInstanceSpec:
    def test_family_spec_builds_expected_graph(self):
        spec = InstanceSpec(family="cycle", size=7, seed=3)
        graph = spec.build()
        assert graph.number_of_nodes() == 7
        assert graph.number_of_edges() == 7

    def test_path_spec_builds_from_file(self, tmp_path):
        graph = complete_bipartite(3, 3)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        spec = InstanceSpec(path=str(path))
        rebuilt = spec.build()
        assert edge_set(rebuilt) == edge_set(graph)

    def test_dict_round_trip(self):
        spec = InstanceSpec(family="torus", size=5, seed=9)
        assert InstanceSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = InstanceSpec(family="random_regular", size=4, seed=2)
        restored = InstanceSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()

    def test_requires_exactly_one_source(self):
        with pytest.raises(InvalidInstanceError):
            InstanceSpec()
        with pytest.raises(InvalidInstanceError):
            InstanceSpec(family="cycle", path="g.txt")

    def test_unknown_family_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown family"):
            InstanceSpec(family="nope")

    def test_fingerprint_stable_and_sensitive(self):
        a = InstanceSpec(family="cycle", size=8, seed=1)
        b = InstanceSpec(family="cycle", size=8, seed=1)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != InstanceSpec(family="cycle", size=9, seed=1).fingerprint()
        assert a.fingerprint() != InstanceSpec(family="cycle", size=8, seed=2).fingerprint()
        assert a.fingerprint() != InstanceSpec(family="path", size=8, seed=1).fingerprint()

    def test_path_fingerprint_ignores_unused_size(self, tmp_path):
        # size is documented as ignored for path instances, so it must
        # not split fingerprints of byte-identical runs.
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        assert (
            InstanceSpec(path=str(path)).fingerprint()
            == InstanceSpec(path=str(path), size=99).fingerprint()
        )

    def test_path_fingerprint_tracks_file_content(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        before = InstanceSpec(path=str(path)).fingerprint()
        assert InstanceSpec(path=str(path)).fingerprint() == before
        path.write_text("0 1\n1 2\n2 3\n")
        assert InstanceSpec(path=str(path)).fingerprint() != before


class TestRunSpec:
    def test_dict_round_trip_preserves_everything(self):
        spec = RunSpec(
            instance=InstanceSpec(family="complete", size=6, seed=4),
            algorithm="linial_greedy",
            run_seed=11,
            params={"extra": 1},
        )
        restored = RunSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()

    def test_json_round_trip_via_plain_json(self):
        spec = RunSpec(
            instance=InstanceSpec(family="star", size=5, seed=2),
            algorithm="bko20",
            policy="machinery",
        )
        payload = json.loads(spec.to_json())
        assert payload["policy"] == "machinery"
        assert RunSpec.from_dict(payload) == spec

    def test_effective_seed_defaults_to_instance_seed(self):
        instance = InstanceSpec(family="cycle", size=6, seed=7)
        assert RunSpec(instance=instance).effective_seed() == 7
        assert RunSpec(instance=instance, run_seed=3).effective_seed() == 3

    def test_equivalent_seeds_fingerprint_identically(self):
        # run_seed=None and an explicit run_seed equal to the instance
        # seed execute identically, so they must share a fingerprint.
        instance = InstanceSpec(family="cycle", size=6, seed=7)
        assert (
            RunSpec(instance=instance).fingerprint()
            == RunSpec(instance=instance, run_seed=7).fingerprint()
        )

    def test_policy_none_equals_default_policy_fingerprint(self):
        # policy=None executes with the solver's default ('scaled'), so
        # the two spellings of the same run share one fingerprint.
        instance = InstanceSpec(family="cycle", size=6, seed=1)
        assert (
            RunSpec(instance=instance).fingerprint()
            == RunSpec(instance=instance, policy="scaled").fingerprint()
        )

    def test_baseline_policy_is_not_normalized(self):
        # Baselines take no policy: a (invalid) baseline spec carrying
        # one must NOT collide with the valid policy-less spec, or the
        # executor cache would serve it a result instead of raising.
        instance = InstanceSpec(family="cycle", size=6, seed=1)
        valid = RunSpec(instance=instance, algorithm="linial_greedy")
        invalid = RunSpec(
            instance=instance, algorithm="linial_greedy", policy="scaled"
        )
        assert valid.fingerprint() != invalid.fingerprint()

    def test_fingerprint_sensitive_to_algorithm_and_policy(self):
        instance = InstanceSpec(family="cycle", size=6, seed=1)
        base = RunSpec(instance=instance)
        assert base.fingerprint() != base.with_algorithm("linial_greedy").fingerprint()
        assert (
            base.fingerprint()
            != RunSpec(instance=instance, policy="machinery").fingerprint()
        )

    def test_specs_are_hashable_and_order_insensitive(self):
        a = RunSpec(
            instance=InstanceSpec(family="cycle", size=6, seed=1),
            params={"b": 2, "a": 1},
        )
        b = RunSpec(
            instance=InstanceSpec(family="cycle", size=6, seed=1),
            params={"a": 1, "b": 2},
        )
        assert a == b
        assert len({a, b}) == 1  # usable in sets / as dict keys
        assert dict(a.params) == {"a": 1, "b": 2}
        assert a.fingerprint() == b.fingerprint()

    def test_with_algorithm_keeps_instance(self):
        spec = RunSpec(instance=InstanceSpec(family="grid", size=3, seed=1))
        other = spec.with_algorithm("kuhn_wattenhofer")
        assert other.instance == spec.instance
        assert other.algorithm == "kuhn_wattenhofer"
