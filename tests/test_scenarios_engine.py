"""Tests for the scheduler's delivery-hook seam and the model hooks.

The engine-level half of the scenario subsystem: the hooked loop must
be bit-for-bit the fast path when no hook exists (that is pinned by
the equivalence suite already — here we pin the *identity model* to
it), and each adversarial hook must realise its documented semantics
deterministically.
"""

import pytest

from repro.graphs.generators import complete_bipartite, cycle_graph, path_graph
from repro.model.network import Network
from repro.model.scheduler import Scheduler
from repro.primitives.node_algorithms import FloodMaxAlgorithm
from repro.scenarios import ScenarioHook, run_under_model
from repro.scenarios.registry import get_model


def flood_result(network, horizon=8):
    return Scheduler(network).run(FloodMaxAlgorithm(horizon))


class TestIdentityModel:
    def test_synchronous_is_bit_for_bit_the_plain_engine(self):
        network = Network(complete_bipartite(4, 4))
        plain = flood_result(network)
        wrapped = run_under_model(
            network, FloodMaxAlgorithm(8), model="synchronous"
        )
        assert wrapped.rounds == plain.rounds
        assert wrapped.messages_sent == plain.messages_sent
        assert wrapped.outputs == plain.outputs
        assert wrapped.max_message_size == plain.max_message_size

    def test_identity_model_builds_no_hook(self):
        model = get_model("synchronous")
        assert model.build_hook(0, {}) is None


class TestPassThroughHook:
    def test_sync_delivery_hook_matches_plain_run(self):
        # The base hook gates nothing: same rounds/messages/outputs as
        # the fast path even though the hooked loop runs per-message.
        network = Network(cycle_graph(7))
        plain = flood_result(network, horizon=4)
        hooked = Scheduler(
            network, delivery_hook=ScenarioHook(seed=0)
        ).run(FloodMaxAlgorithm(4))
        assert hooked.rounds == plain.rounds
        assert hooked.messages_sent == plain.messages_sent
        assert hooked.outputs == plain.outputs

    def test_hooked_run_supports_trace_and_send_log(self):
        network = Network(path_graph(4))
        scheduler = Scheduler(
            network,
            record_trace=True,
            record_send_log=True,
            delivery_hook=ScenarioHook(seed=0),
        )
        result = scheduler.run(FloodMaxAlgorithm(2))
        rounds_col, slots_col, payloads_col = scheduler.send_log()
        assert len(result.trace) == result.messages_sent
        assert len(rounds_col) == len(slots_col) == len(payloads_col)
        assert len(rounds_col) == result.messages_sent


class TestBoundedAsynchrony:
    def test_quota_limits_per_round_deliveries(self):
        network = Network(path_graph(5))
        result = run_under_model(
            network,
            FloodMaxAlgorithm(3),
            model="bounded_async",
            seed=1,
            params={"quota": 1},
        )
        # FloodMax halts on its round counter, so the horizon bounds
        # rounds; with quota 1 at most `rounds` messages ever flush.
        assert result.messages_sent <= result.rounds

    def test_information_is_delayed_not_lost(self):
        # On a path with a tiny quota, distant nodes cannot learn the
        # max in time: the identity run floods it everywhere, the
        # quota run must leave some node behind.
        network = Network(path_graph(6))
        sync = run_under_model(network, FloodMaxAlgorithm(5))
        slow = run_under_model(
            network,
            FloodMaxAlgorithm(5),
            model="bounded_async",
            seed=1,
            params={"quota": 1},
        )
        assert set(sync.outputs.values()) == {max(sync.outputs.values())}
        assert slow.outputs != sync.outputs

    def test_seeded_jitter_is_deterministic(self):
        network = Network(complete_bipartite(3, 3))

        def go():
            return run_under_model(
                network,
                FloodMaxAlgorithm(4),
                model="bounded_async",
                seed=5,
                params={"quota": 2, "jitter": 3},
            )

        first, second = go(), go()
        assert first.outputs == second.outputs
        assert first.messages_sent == second.messages_sent


class TestCrashStop:
    def test_crashed_nodes_are_excluded_from_outputs(self):
        network = Network(cycle_graph(8))
        result = run_under_model(
            network,
            FloodMaxAlgorithm(4),
            model="crash_stop",
            seed=3,
            params={"f": 2, "horizon": 2},
        )
        assert len(result.outputs) == network.n - 2

    def test_crash_schedule_is_seeded(self):
        network = Network(cycle_graph(8))

        def survivors(seed):
            result = run_under_model(
                network,
                FloodMaxAlgorithm(4),
                model="crash_stop",
                seed=seed,
                params={"f": 3, "horizon": 2},
            )
            return frozenset(result.outputs)

        assert survivors(1) == survivors(1)
        # Different adversary seeds pick different victims somewhere in
        # this seed range (8 choose 3 leaves plenty of room).
        assert len({survivors(seed) for seed in range(6)}) > 1

    def test_f_zero_is_harmless(self):
        network = Network(path_graph(4))
        sync = run_under_model(network, FloodMaxAlgorithm(3))
        result = run_under_model(
            network,
            FloodMaxAlgorithm(3),
            model="crash_stop",
            seed=1,
            params={"f": 0},
        )
        assert result.outputs == sync.outputs
        assert result.messages_sent == sync.messages_sent


class TestLossyLinks:
    def test_drop_zero_duplicate_zero_is_sync(self):
        network = Network(complete_bipartite(3, 3))
        sync = run_under_model(network, FloodMaxAlgorithm(4))
        clean = run_under_model(
            network,
            FloodMaxAlgorithm(4),
            model="lossy_links",
            seed=1,
            params={"drop": 0.0, "duplicate": 0.0},
        )
        assert clean.outputs == sync.outputs
        assert clean.messages_sent == sync.messages_sent
        assert clean.rounds == sync.rounds

    def test_drops_reduce_delivered_messages(self):
        network = Network(complete_bipartite(4, 4))
        sync = run_under_model(network, FloodMaxAlgorithm(4))
        lossy = run_under_model(
            network,
            FloodMaxAlgorithm(4),
            model="lossy_links",
            seed=2,
            params={"drop": 0.5},
        )
        assert lossy.messages_sent < sync.messages_sent

    def test_duplicates_echo_on_a_later_round(self):
        # With duplication certain, echoes collide with the next
        # round's fresh sends on the same links; the per-link rule
        # requeues them, and everything stays deterministic.
        network = Network(path_graph(3))

        def go():
            return run_under_model(
                network,
                FloodMaxAlgorithm(3),
                model="lossy_links",
                seed=4,
                params={"drop": 0.0, "duplicate": 0.9},
            )

        first, second = go(), go()
        assert first.outputs == second.outputs
        assert first.messages_sent == second.messages_sent
        # Echoes add deliveries beyond the synchronous count.
        sync = run_under_model(network, FloodMaxAlgorithm(3))
        assert first.messages_sent >= sync.messages_sent


class TestHookBookkeeping:
    def test_stats_are_json_safe_counters(self):
        model = get_model("lossy_links")
        hook = model.build_hook(1, {"drop": 0.3, "duplicate": 0.2})
        network = Network(complete_bipartite(3, 3))
        Scheduler(network, delivery_hook=hook).run(FloodMaxAlgorithm(4))
        stats = hook.stats()
        for key in (
            "messages_dropped",
            "messages_deferred",
            "messages_duplicated",
            "undelivered_at_finish",
            "crashed_count",
            "stages",
        ):
            assert isinstance(stats[key], int), key
        assert stats["stages"] == 1

    def test_multi_stage_runs_share_one_adversary_timeline(self):
        model = get_model("crash_stop")
        hook = model.build_hook(2, {"f": 2, "horizon": 1})
        network = Network(cycle_graph(6))
        first = Scheduler(network, delivery_hook=hook).run(FloodMaxAlgorithm(3))
        crashed_after_first = set(hook.crashed)
        assert len(crashed_after_first) == 2
        # Stage two re-applies the crash set before round 1 — victims
        # stay dead, and no new crashes appear (horizon passed).
        second = Scheduler(network, delivery_hook=hook).run(FloodMaxAlgorithm(3))
        assert hook.crashed == crashed_after_first
        assert set(second.outputs) == set(first.outputs)
        assert hook.stats()["stages"] == 2

    def test_round_limit_still_enforced_under_hook(self):
        from repro.errors import RoundLimitExceededError

        network = Network(path_graph(4))
        hook = get_model("bounded_async").build_hook(1, {"quota": 1})
        scheduler = Scheduler(network, max_rounds=2, delivery_hook=hook)
        with pytest.raises(RoundLimitExceededError):
            scheduler.run(FloodMaxAlgorithm(10))
