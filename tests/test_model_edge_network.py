"""Tests for the line-graph network adapter, including the columnar
delivery path: edge-agent networks run on the same flat-buffer engine
as node networks, so delivery order, port symmetry, and halted-receiver
message accounting are pinned here against the reference loop."""

from bisect import bisect_right

import networkx as nx

from repro.graphs.edges import edge_set
from repro.graphs.line_graph import edge_degree
from repro.graphs.properties import assign_unique_ids
from repro.model.algorithm import NodeAlgorithm
from repro.model.edge_network import edge_identifier, line_graph_network
from repro.model.reference import reference_run
from repro.model.scheduler import Scheduler


class TestEdgeIdentifier:
    def test_distinct_edges_get_distinct_ids(self):
        g = nx.complete_graph(6)
        ids = {node: node + 1 for node in g.nodes()}
        seen = set()
        for edge in edge_set(g):
            value = edge_identifier(edge, ids, 6)
            assert value not in seen
            seen.add(value)

    def test_polynomial_id_space(self):
        g = nx.complete_graph(5)
        ids = {node: node + 1 for node in g.nodes()}
        for edge in edge_set(g):
            assert 1 <= edge_identifier(edge, ids, 5) <= 6 * 5 + 5

    def test_order_independent(self):
        ids = {0: 3, 1: 7}
        assert edge_identifier((0, 1), ids, 7) == 3 * 8 + 7


class InboxOrderRecorder(NodeAlgorithm):
    """Broadcasts its ID; output embeds every round's inbox *items* in
    iteration order, so delivery order is part of the diffed output."""

    def __init__(self, horizon: int) -> None:
        self._horizon = horizon

    def initialize(self, ctx):
        ctx.state["round"] = 0
        ctx.state["seen"] = []

    def compose_messages(self, ctx):
        return dict.fromkeys(range(ctx.degree), ctx.unique_id)

    def receive_messages(self, ctx, inbox):
        ctx.state["seen"].append(list(inbox.items()))
        ctx.state["round"] += 1
        if ctx.state["round"] >= self._horizon:
            ctx.halt()

    def output(self, ctx):
        return ctx.state["seen"]


class HaltByIdParity(NodeAlgorithm):
    """Even-ID agents halt after one round; odd-ID agents keep sending
    to them anyway — those messages must be counted, never delivered."""

    def initialize(self, ctx):
        ctx.state["round"] = 0

    def compose_messages(self, ctx):
        # Alternate uniform broadcasts and partial per-port sends so
        # both the broadcast column and the push path cross halted
        # receivers.
        if ctx.state["round"] % 2 == 0:
            return dict.fromkeys(range(ctx.degree), ctx.unique_id)
        return {
            port: (ctx.unique_id, port) for port in range(0, ctx.degree, 2)
        }

    def receive_messages(self, ctx, inbox):
        ctx.state["round"] += 1
        if ctx.unique_id % 2 == 0 and ctx.state["round"] >= 1:
            ctx.halt()
        elif ctx.state["round"] >= 4:
            ctx.halt()

    def output(self, ctx):
        return ctx.state["round"]


class TestColumnarDeliveryOnEdgeNetworks:
    """The columnar engine on line-graph (edge-agent) networks."""

    def _network(self, seed=3):
        graph = nx.barbell_graph(4, 2)
        ids = assign_unique_ids(graph, seed=seed)
        return line_graph_network(graph, node_ids=ids)

    def test_delivery_order_matches_reference(self):
        network = self._network()
        ref = reference_run(network, InboxOrderRecorder(3))
        fast = Scheduler(network).run(InboxOrderRecorder(3))
        assert ref.outputs == fast.outputs  # contents AND item order
        assert ref.messages_sent == fast.messages_sent

    def test_port_symmetry_of_compiled_columns(self):
        """dest_slot is an involution, and the columns agree with the
        port-level API: following a slot to its destination and back
        is the identity."""
        network = self._network()
        row_start, col_receiver, col_port, col_dest = (
            network.delivery_columns()
        )
        assert row_start[-1] == len(col_receiver)
        for idx in range(len(col_dest)):
            assert col_dest[col_dest[idx]] == idx
            sender_index = bisect_right(row_start, idx) - 1
            sender = network.node_at(sender_index)
            port = idx - row_start[sender_index]
            receiver = network.node_at(col_receiver[idx])
            assert network.neighbor_at_port(sender, port) == receiver
            assert network.port_towards(receiver, sender) == col_port[idx]

    def test_neighbor_index_rows_match_port_order(self):
        network = self._network()
        rows = network.neighbor_index_rows()
        for node in network.nodes():
            index = network.index_of(node)
            assert [network.node_at(j) for j in rows[index]] == (
                network.neighbors_in_port_order(node)
            )

    def test_halted_receiver_messages_counted_like_reference(self):
        network = self._network(seed=9)
        ref = reference_run(network, HaltByIdParity())
        fast = Scheduler(network).run(HaltByIdParity())
        assert ref.rounds == fast.rounds
        assert ref.messages_sent == fast.messages_sent
        assert ref.outputs == fast.outputs
        # Sanity: the scenario really has live senders aiming at
        # halted receivers (otherwise the test proves nothing).
        assert any(r == 1 for r in ref.outputs.values())
        assert any(r > 1 for r in ref.outputs.values())


class TestLineGraphNetwork:
    def test_nodes_are_edges(self):
        g = nx.cycle_graph(5)
        net = line_graph_network(g)
        assert set(net.nodes()) == set(edge_set(g))

    def test_degrees_match_edge_degrees(self):
        g = nx.barbell_graph(3, 1)
        net = line_graph_network(g)
        for edge in edge_set(g):
            assert net.degree(edge) == edge_degree(g, edge)

    def test_ids_unique(self):
        g = nx.complete_bipartite_graph(3, 3)
        net = line_graph_network(g)
        values = list(net.ids().values())
        assert len(set(values)) == len(values)
