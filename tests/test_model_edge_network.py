"""Tests for the line-graph network adapter."""

import networkx as nx

from repro.graphs.edges import edge_set
from repro.graphs.line_graph import edge_degree
from repro.model.edge_network import edge_identifier, line_graph_network


class TestEdgeIdentifier:
    def test_distinct_edges_get_distinct_ids(self):
        g = nx.complete_graph(6)
        ids = {node: node + 1 for node in g.nodes()}
        seen = set()
        for edge in edge_set(g):
            value = edge_identifier(edge, ids, 6)
            assert value not in seen
            seen.add(value)

    def test_polynomial_id_space(self):
        g = nx.complete_graph(5)
        ids = {node: node + 1 for node in g.nodes()}
        for edge in edge_set(g):
            assert 1 <= edge_identifier(edge, ids, 5) <= 6 * 5 + 5

    def test_order_independent(self):
        ids = {0: 3, 1: 7}
        assert edge_identifier((0, 1), ids, 7) == 3 * 8 + 7


class TestLineGraphNetwork:
    def test_nodes_are_edges(self):
        g = nx.cycle_graph(5)
        net = line_graph_network(g)
        assert set(net.nodes()) == set(edge_set(g))

    def test_degrees_match_edge_degrees(self):
        g = nx.barbell_graph(3, 1)
        net = line_graph_network(g)
        for edge in edge_set(g):
            assert net.degree(edge) == edge_degree(g, edge)

    def test_ids_unique(self):
        g = nx.complete_bipartite_graph(3, 3)
        net = line_graph_network(g)
        values = list(net.ids().values())
        assert len(set(values)) == len(values)
