"""Tests for spec-driven scenario execution through the batch executor.

Pins the PR's acceptance criteria: the identity scenario is bit-for-bit
a plain ``run()`` (same fingerprint-keyed result payload, shared cache
entries), and every adversarial model is deterministic under a fixed
seed — serial == parallel, including via the on-disk cache.
"""

import pytest

from repro.analysis.harness import run_scenario_sweep
from repro.api import (
    InstanceSpec,
    RunSpec,
    ScenarioSpec,
    clear_result_cache,
    result_cache_size,
    run,
    run_many,
    specs_for_scenarios,
)
from repro.coloring.verify import check_proper_edge_coloring
from repro.errors import ColoringValidationError, ScenarioError
from repro.results import RunResult
from repro.scenarios import (
    conflict_count,
    is_scenario_result,
    scenario_capable,
    validate_scenario_result,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_result_cache()
    yield
    clear_result_cache()


def instance() -> InstanceSpec:
    return InstanceSpec(family="complete_bipartite", size=3, seed=2)


def adversarial_specs(algorithm="greedy_sequential") -> list[RunSpec]:
    inst = instance()
    return specs_for_scenarios(
        inst,
        [
            ScenarioSpec(model="bounded_async", seed=1, params={"quota": 3}),
            ScenarioSpec(model="crash_stop", seed=2, params={"f": 2}),
            ScenarioSpec(model="lossy_links", seed=3, params={"drop": 0.25}),
            ScenarioSpec(
                model="lossy_links", seed=4,
                params={"drop": 0.2, "duplicate": 0.4},
            ),
        ],
        algorithm=algorithm,
    )


class TestSynchronousBitForBit:
    def test_identity_scenario_equals_plain_run(self):
        plain_spec = RunSpec(instance=instance(), algorithm="greedy_sequential")
        sync_spec = plain_spec.with_scenario(ScenarioSpec())
        plain = run(plain_spec, cache=False)
        sync = run(sync_spec, cache=False)
        assert sync.result_fingerprint() == plain.result_fingerprint()
        assert sync.coloring == plain.coloring
        assert sync.rounds == plain.rounds
        assert not is_scenario_result(sync)

    def test_identity_scenario_hits_the_plain_cache_entry(self):
        plain_spec = RunSpec(instance=instance(), algorithm="greedy_sequential")
        first = run(plain_spec)
        assert result_cache_size() == 1
        hit = run(plain_spec.with_scenario(ScenarioSpec()))
        assert result_cache_size() == 1  # same fingerprint, same entry
        assert hit.result_fingerprint() == first.result_fingerprint()


class TestAdversarialDeterminism:
    def test_repeat_runs_are_byte_identical(self):
        for spec in adversarial_specs():
            first = run(spec, cache=False)
            second = run(spec, cache=False)
            assert first.result_fingerprint() == second.result_fingerprint(), (
                spec.label()
            )

    def test_serial_equals_parallel(self):
        specs = adversarial_specs()
        serial = run_many(specs, parallel=1, cache=False)
        clear_result_cache()
        parallel = run_many(specs, parallel=2, cache=False)
        for spec, left, right in zip(specs, serial, parallel):
            assert left.result_fingerprint() == right.result_fingerprint(), (
                spec.label()
            )

    def test_disk_cache_round_trip_is_byte_identical(self, tmp_path):
        specs = adversarial_specs()
        first = run_many(specs, cache=False, cache_dir=tmp_path)
        clear_result_cache()
        # Second pass replays from disk (cache=False keeps process
        # memory out of the picture) and must validate + match exactly.
        second = run_many(specs, cache=False, cache_dir=tmp_path)
        for left, right in zip(first, second):
            assert left.result_fingerprint() == right.result_fingerprint()
            assert is_scenario_result(right)

    def test_different_adversary_seeds_differ_somewhere(self):
        inst = instance()
        outcomes = {
            run(
                RunSpec(
                    instance=inst,
                    algorithm="greedy_sequential",
                    scenario=ScenarioSpec(
                        model="lossy_links", seed=seed, params={"drop": 0.4}
                    ),
                ),
                cache=False,
            ).details["messages_dropped"]
            for seed in range(5)
        }
        assert len(outcomes) > 1


class TestScenarioOutcomes:
    def test_crash_stop_reports_survivor_induced_validity(self):
        spec = RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="crash_stop", seed=2, params={"f": 2}),
        )
        result = run(spec, cache=False)
        details = result.details
        assert details["crashed_count"] == len(details["crashed_edges"]) == 2
        assert details["survivors"] == 9 - 2
        # Crashed agents never carry a color.
        from repro.graphs.edges import token_to_edge

        for token in details["crashed_edges"]:
            assert token_to_edge(token) not in result.coloring
        # The survivor coloring is proper *as a partial coloring*.
        if details["proper_on_survivors"]:
            check_proper_edge_coloring(
                instance().build(), result.coloring, require_total=False
            )
        assert [round_ for round_, _ in details["crash_schedule"]]

    def test_retransmission_keeps_moderate_loss_proper(self):
        # The sweep rebroadcasts colors every round, so moderate loss
        # rarely creates conflicts; conflicts are *counted* either way
        # and the recorded count must match a recomputation.
        spec = RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(
                model="lossy_links", seed=3, params={"drop": 0.25}
            ),
        )
        result = run(spec, cache=False)
        graph = instance().build()
        assert result.details["conflicts_on_survivors"] == conflict_count(
            graph, result.coloring
        )

    def test_starved_sweep_measures_conflicts_instead_of_raising(self):
        spec = RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(
                model="bounded_async", seed=1, params={"quota": 2}
            ),
        )
        result = run(spec, cache=False)  # validate=True must not raise
        assert result.details["conflicts_on_survivors"] > 0
        assert result.details["proper_on_survivors"] is False

    def test_pipeline_program_records_class_palette(self):
        spec = RunSpec(
            instance=instance(),
            algorithm="linial_greedy",
            scenario=ScenarioSpec(model="lossy_links", seed=5),
        )
        result = run(spec, cache=False)
        if result.details["aborted"] is None:
            assert result.details["class_palette"] >= 1
        else:
            assert result.coloring == {}

    def test_rounds_to_quiescence_matches_rounds(self):
        for spec in adversarial_specs():
            result = run(spec, cache=False)
            assert result.details["rounds_to_quiescence"] == result.rounds


class TestAbortedRuns:
    def aborted_spec(self) -> RunSpec:
        # A 3-round budget cannot fit the m+1-round sweep: the program
        # dies with RoundLimitExceededError, which is recorded.
        return RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            params={"max_rounds": 3},
            scenario=ScenarioSpec(
                model="crash_stop", seed=1, params={"f": 5, "horizon": 2}
            ),
        )

    def test_abort_is_recorded_not_raised(self):
        result = run(self.aborted_spec(), cache=False)
        assert "RoundLimitExceededError" in result.details["aborted"]
        assert result.coloring == {}
        assert result.details["proper_on_survivors"] is False

    def test_abort_crash_observables_are_internally_consistent(self):
        result = run(self.aborted_spec(), cache=False)
        details = result.details
        # No per-agent outcome exists, so the observed crash count must
        # agree with the (empty) crashed edge list — the adversary's
        # *plan* stays visible separately as crash_schedule provenance —
        # and the survivor-population fields are null, not zero/full.
        assert details["crashed_count"] == len(details["crashed_edges"]) == 0
        assert details["survivors"] is None
        assert details["uncolored_survivors"] is None
        assert len(details["crash_schedule"]) == 5

    def test_abort_keeps_partial_delivery_observables(self):
        # The engine reports flushed messages through the hook even
        # when the run dies, so an aborted row still shows its real
        # traffic instead of a too-healthy-looking zero.  (A 6-round
        # budget lets several announcement rounds happen before the
        # m+1-round sweep blows the limit.)
        spec = self.aborted_spec()
        spec = RunSpec(
            instance=spec.instance,
            algorithm=spec.algorithm,
            params={"max_rounds": 6},
            scenario=spec.scenario,
        )
        result = run(spec, cache=False)
        assert result.details["aborted"] is not None
        assert result.details["messages_delivered"] > 0
        assert result.details["rounds_to_quiescence"] > 0

    def test_aborted_runs_are_deterministic_and_validate(self):
        spec = self.aborted_spec()
        first = run(spec, cache=False)
        second = run(spec, cache=False)
        assert first.result_fingerprint() == second.result_fingerprint()
        validate_scenario_result(first, instance().build())


class TestProgramExtensionPoint:
    def test_registered_program_runs_without_api_registry_entry(self):
        from repro.scenarios import ProgramOutcome, ScenarioProgram, register_program
        from repro.scenarios.programs import _PROGRAMS

        def runner(graph, *, seed, hook, max_rounds=10):
            return ProgramOutcome(coloring={}, rounds=1, messages=0)

        register_program(
            ScenarioProgram(
                name="noop_program", description="test-only", runner=runner
            )
        )
        try:
            spec = RunSpec(
                instance=instance(),
                algorithm="noop_program",
                scenario=ScenarioSpec(model="lossy_links", seed=1),
            )
            result = run(spec, cache=False)
            assert result.name == "noop_program"
            assert result.rounds == 1
        finally:
            _PROGRAMS.pop("noop_program", None)


class TestScenarioErrors:
    def test_non_capable_algorithm_raises_with_capable_list(self):
        spec = RunSpec(
            instance=instance(),
            algorithm="bko20",
            scenario=ScenarioSpec(model="lossy_links", seed=1),
        )
        with pytest.raises(ScenarioError) as excinfo:
            run(spec, cache=False)
        for name in scenario_capable():
            assert name in str(excinfo.value)

    def test_policy_with_scenario_raises(self):
        spec = RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            policy="scaled",
            scenario=ScenarioSpec(model="lossy_links", seed=1),
        )
        with pytest.raises(ScenarioError, match="policy"):
            run(spec, cache=False)

    def test_unknown_run_params_raise(self):
        spec = RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            params={"horizon": 3},
            scenario=ScenarioSpec(model="lossy_links", seed=1),
        )
        with pytest.raises(ScenarioError, match="run"):
            run(spec, cache=False)


class TestScenarioValidation:
    def run_crash(self) -> RunResult:
        spec = RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="crash_stop", seed=2, params={"f": 2}),
        )
        return run(spec, cache=False)

    def test_tampered_conflict_count_is_rejected(self):
        result = self.run_crash()
        graph = instance().build()
        validate_scenario_result(result, graph)  # honest result passes
        result.details["conflicts_on_survivors"] = 99
        with pytest.raises(ColoringValidationError, match="conflicts"):
            validate_scenario_result(result, graph)

    def test_tampered_proper_flag_is_rejected(self):
        result = self.run_crash()
        graph = instance().build()
        result.details["proper_on_survivors"] = not result.details[
            "proper_on_survivors"
        ]
        with pytest.raises(ColoringValidationError, match="proper"):
            validate_scenario_result(result, graph)

    def test_colored_crashed_edge_is_rejected(self):
        result = self.run_crash()
        graph = instance().build()
        from repro.graphs.edges import token_to_edge

        crashed_edge = token_to_edge(result.details["crashed_edges"][0])
        result.coloring[crashed_edge] = 1
        with pytest.raises(ColoringValidationError):
            validate_scenario_result(result, graph)

    def test_details_survive_disk_round_trip_exactly(self, tmp_path):
        spec = adversarial_specs()[3]  # lossy with duplication
        stored = run(spec, cache=False, cache_dir=tmp_path)
        clear_result_cache()
        loaded = run(spec, cache=False, cache_dir=tmp_path)
        assert loaded.details == stored.details
        assert loaded.to_dict() == stored.to_dict()


class TestScenarioSweep:
    def test_sweep_rows_carry_outcome_columns(self):
        inst = instance()
        specs = [
            RunSpec(instance=inst, algorithm="greedy_sequential")
        ] + adversarial_specs()
        sweep = run_scenario_sweep(specs, parallel=1)
        assert len(sweep.rows) == len(specs)
        baseline = sweep.rows[0]
        assert baseline.values["model"] == "synchronous"
        assert baseline.values["dropped"] == 0
        for row in sweep.rows[1:]:
            assert row.values["model"] in (
                "bounded_async", "crash_stop", "lossy_links",
            )
            assert isinstance(row.values["conflicts"], int)
        names = sweep.series_names()
        for column in ("model", "rounds", "delivered", "proper", "fingerprint"):
            assert column in names

    def test_sweep_serial_equals_parallel(self):
        specs = adversarial_specs()
        serial = run_scenario_sweep(specs, parallel=1, cache=False)
        clear_result_cache()
        parallel = run_scenario_sweep(specs, parallel=2, cache=False)
        assert [row.values for row in serial.rows] == [
            row.values for row in parallel.rows
        ]
