"""Tests for the mutable partial coloring — especially the residual
invariant the whole algorithm rests on."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ColoringValidationError, InvalidInstanceError
from repro.coloring.edge_coloring import PartialEdgeColoring, full_coloring_as_dict
from repro.coloring.lists import deg_plus_one_lists, uniform_lists
from repro.coloring.palette import Palette
from repro.graphs.edges import edge_set
from repro.graphs.generators import random_regular
from repro.graphs.line_graph import edge_degree


def _fresh(graph):
    return PartialEdgeColoring(graph, deg_plus_one_lists(graph))


class TestAssign:
    def test_basic_assign_and_read(self):
        g = nx.path_graph(3)
        coloring = _fresh(g)
        coloring.assign((0, 1), 1)
        assert coloring.color_of((0, 1)) == 1
        assert coloring.is_colored((0, 1))
        assert not coloring.is_colored((1, 2))

    def test_rejects_double_assign(self):
        g = nx.path_graph(3)
        coloring = _fresh(g)
        coloring.assign((0, 1), 1)
        with pytest.raises(ColoringValidationError):
            coloring.assign((0, 1), 2)

    def test_rejects_color_outside_list(self):
        g = nx.path_graph(3)
        coloring = _fresh(g)
        with pytest.raises(ColoringValidationError):
            coloring.assign((0, 1), 999)

    def test_rejects_neighbor_conflict(self):
        g = nx.path_graph(3)
        coloring = _fresh(g)
        coloring.assign((0, 1), 1)
        with pytest.raises(ColoringValidationError):
            coloring.assign((1, 2), 1)

    def test_rejects_unknown_edge(self):
        g = nx.path_graph(3)
        coloring = _fresh(g)
        with pytest.raises(InvalidInstanceError):
            coloring.assign((0, 2), 1)

    def test_non_adjacent_edges_may_share_color(self):
        g = nx.path_graph(4)
        coloring = _fresh(g)
        coloring.assign((0, 1), 1)
        coloring.assign((2, 3), 1)  # disjoint from (0,1)


class TestResidualBookkeeping:
    def test_residual_list_shrinks_by_neighbor_colors(self):
        g = nx.star_graph(3)
        lists = uniform_lists(g, Palette.of_size(5))
        coloring = PartialEdgeColoring(g, lists)
        coloring.assign((0, 1), 2)
        assert 2 not in coloring.residual_list((0, 2))
        assert 2 not in coloring.residual_list((0, 3))
        # Unrelated colors remain available.
        assert 1 in coloring.residual_list((0, 2))

    def test_residual_degree_counts_uncolored_neighbors(self):
        g = nx.star_graph(3)
        coloring = PartialEdgeColoring(g, uniform_lists(g, Palette.of_size(5)))
        assert coloring.residual_degree((0, 1)) == 2
        coloring.assign((0, 2), 1)
        assert coloring.residual_degree((0, 1)) == 1

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_residual_invariant(self, seed):
        """After any greedy partial coloring of a (deg+1)-list
        instance, the residual instance is again (deg+1)-feasible —
        the invariant every recursion step of the paper relies on."""
        import random

        rng = random.Random(seed)
        g = random_regular(4, 12, seed=seed % 100)
        lists = deg_plus_one_lists(g, seed=seed % 977)
        coloring = PartialEdgeColoring(g, lists)
        edges = edge_set(g)
        rng.shuffle(edges)
        for edge in edges[: len(edges) // 2]:
            residual = coloring.residual_list(edge)
            if residual:
                coloring.assign(edge, rng.choice(sorted(residual)))
        residual_graph, residual_lists = coloring.residual_instance()
        residual_lists.validate_deg_plus_one(residual_graph)  # must not raise


class TestResidualInstance:
    def test_contains_exactly_uncolored_edges(self):
        g = nx.cycle_graph(5)
        coloring = _fresh(g)
        coloring.assign((0, 1), min(coloring.residual_list((0, 1))))
        sub, lists = coloring.residual_instance()
        assert (0, 1) not in set(edge_set(sub))
        assert sub.number_of_edges() == 4

    def test_merge_from_subinstance(self):
        g = nx.cycle_graph(6)
        coloring = _fresh(g)
        sub_coloring = PartialEdgeColoring(g, coloring.lists)
        sub_coloring.assign((0, 1), 1)
        coloring.merge_from(sub_coloring)
        assert coloring.color_of((0, 1)) == 1

    def test_merge_detects_conflicts(self):
        g = nx.path_graph(3)
        coloring = _fresh(g)
        coloring.assign((0, 1), 1)
        other = PartialEdgeColoring(g, coloring.lists)
        other.assign((1, 2), 1)
        with pytest.raises(ColoringValidationError):
            coloring.merge_from(other)


class TestFullColoring:
    def test_requires_completeness(self):
        g = nx.path_graph(3)
        coloring = _fresh(g)
        with pytest.raises(ColoringValidationError):
            full_coloring_as_dict(g, coloring)

    def test_complete_roundtrip(self):
        g = nx.path_graph(3)
        coloring = _fresh(g)
        for edge in edge_set(g):
            coloring.assign(edge, min(coloring.residual_list(edge)))
        result = full_coloring_as_dict(g, coloring)
        assert set(result) == set(edge_set(g))
