"""Tests for Lemma 4.3 — the color space reduction."""

import networkx as nx
import pytest

from repro.errors import ParameterError
from repro.coloring.lists import ListAssignment, uniform_lists
from repro.coloring.palette import Palette
from repro.core.ledger import RoundLedger
from repro.core.solver import RecursiveSolver, compute_initial_edge_coloring
from repro.core.space_reduction import equation_2_bound, reduce_color_space
from repro.core.params import scaled_policy
from repro.graphs.edges import edge_set
from repro.graphs.generators import complete_bipartite, random_regular
from repro.graphs.line_graph import line_graph_adjacency
from repro.utils.harmonic import harmonic_number


def _make_instance(graph, palette_size, seed=1):
    """Uniform lists over the full palette; adjacency + degrees."""
    palette = Palette.of_size(palette_size)
    edges = edge_set(graph)
    lists = {edge: palette.as_set for edge in edges}
    adjacency = line_graph_adjacency(graph)
    degrees = {edge: len(adjacency[edge]) for edge in edges}
    initial, _p, _r = compute_initial_edge_coloring(graph, seed=seed)
    return edges, lists, palette, adjacency, degrees, initial


def _recursive_index_solver(policy=None):
    """The real callback used by the solver: a child RecursiveSolver."""
    policy = policy or scaled_policy()

    def solve(graph, lists, initial, tag):
        child = RecursiveSolver(
            graph, lists, initial, policy, RoundLedger(), depth=0
        )
        return child.solve_internal()

    return solve


class TestReduceColorSpace:
    def test_assigns_every_edge_on_full_lists(self):
        graph = random_regular(8, 24, seed=4)
        edges, lists, palette, adjacency, degrees, initial = _make_instance(
            graph, 64
        )
        outcome = reduce_color_space(
            edges, lists, palette, 4, adjacency, degrees, initial,
            _recursive_index_solver(),
        )
        assert not outcome.deferred
        assert set(outcome.assignment) == set(edges)
        assert all(
            0 <= index < len(outcome.subspaces)
            for index in outcome.assignment.values()
        )

    def test_new_lists_are_nonempty(self):
        graph = complete_bipartite(6, 6)
        edges, lists, palette, adjacency, degrees, initial = _make_instance(
            graph, 40
        )
        outcome = reduce_color_space(
            edges, lists, palette, 4, adjacency, degrees, initial,
            _recursive_index_solver(),
        )
        for edge, index in outcome.assignment.items():
            assert lists[edge] & outcome.subspaces[index].as_set

    def test_equation_2_holds_on_uniform_instances(self):
        """With full uniform lists the theory regime is comfortably
        satisfied, so Equation (2) must hold for every edge."""
        graph = random_regular(8, 24, seed=9)
        edges, lists, palette, adjacency, degrees, initial = _make_instance(
            graph, 60
        )
        outcome = reduce_color_space(
            edges, lists, palette, 3, adjacency, degrees, initial,
            _recursive_index_solver(),
        )
        assert outcome.eq2_violations == 0

    def test_level_histogram_populated(self):
        graph = random_regular(6, 16, seed=2)
        edges, lists, palette, adjacency, degrees, initial = _make_instance(
            graph, 32
        )
        outcome = reduce_color_space(
            edges, lists, palette, 4, adjacency, degrees, initial,
            _recursive_index_solver(),
        )
        assert sum(outcome.level_histogram.values()) == len(edges)

    def test_empty_list_edges_deferred(self):
        graph = nx.path_graph(3)
        edges = edge_set(graph)
        palette = Palette.of_size(8)
        lists = {edges[0]: frozenset(), edges[1]: frozenset({1, 2, 3})}
        adjacency = line_graph_adjacency(graph)
        degrees = {e: len(adjacency[e]) for e in edges}
        initial, _p, _r = compute_initial_edge_coloring(graph)
        outcome = reduce_color_space(
            edges, lists, palette, 2, adjacency, degrees, initial,
            _recursive_index_solver(),
        )
        assert edges[0] in outcome.deferred
        assert edges[1] in outcome.assignment

    def test_rejects_bad_p(self):
        graph = nx.path_graph(3)
        edges, lists, palette, adjacency, degrees, initial = _make_instance(
            graph, 8
        )
        with pytest.raises(ParameterError):
            reduce_color_space(
                edges, lists, palette, 1, adjacency, degrees, initial,
                _recursive_index_solver(),
            )
        with pytest.raises(ParameterError):
            reduce_color_space(
                edges, lists, palette, 99, adjacency, degrees, initial,
                _recursive_index_solver(),
            )

    def test_subspace_instances_are_independent(self):
        """Adjacent edges in the same subspace keep overlapping lists;
        the per-subspace slack must track Equation (2)'s promise —
        verified here as: new degree <= bound for every edge."""
        graph = random_regular(10, 30, seed=6)
        edges, lists, palette, adjacency, degrees, initial = _make_instance(
            graph, 80
        )
        p = 4
        outcome = reduce_color_space(
            edges, lists, palette, p, adjacency, degrees, initial,
            _recursive_index_solver(),
        )
        q = len(outcome.subspaces)
        for edge, index in outcome.assignment.items():
            same = sum(
                1
                for n in adjacency[edge]
                if outcome.assignment.get(n) == index
            )
            new_list = len(lists[edge] & outcome.subspaces[index].as_set)
            bound = equation_2_bound(q, p, len(lists[edge]), new_list, degrees[edge])
            assert same <= bound


class TestEquation2Bound:
    def test_formula(self):
        import math

        value = equation_2_bound(8, 4, 10, 5, 6)
        expected = 24 * harmonic_number(8) * math.log2(4) * 0.5 * 6
        assert value == pytest.approx(expected)

    def test_rejects_zero_list(self):
        with pytest.raises(ParameterError):
            equation_2_bound(4, 2, 0, 1, 3)
