"""Scheduler equivalence: the fast path vs the preserved seed loop.

The simulation core was rebuilt around precomputed, integer-indexed
structures (see :mod:`repro.model.scheduler`); these property-style
tests are the contract that the rebuild changed *nothing observable*:
on a zoo of random graphs x ID assignments, ``rounds``,
``messages_sent`` and ``outputs`` must be bit-identical between
:func:`repro.model.reference.reference_run` (the seed loop) and
:meth:`repro.model.scheduler.Scheduler.run` (the fast path).

The determinism contract of the *consumers* is pinned too: Luby's
randomized baseline and the full BKO20 solver must be invariant under
graph-construction insertion order (everything orders by the single
canonical sort) and reproducible run-to-run.
"""

import random

import networkx as nx
import pytest

from repro.baselines.randomized_luby import randomized_luby_coloring
from repro.core.solver import solve_edge_coloring
from repro.graphs.edges import edge_set
from repro.graphs.generators import random_regular
from repro.graphs.properties import assign_unique_ids, max_degree
from repro.model.algorithm import NodeAlgorithm
from repro.model.edge_network import line_graph_network
from repro.model.network import Network
from repro.model.reference import reference_run
from repro.model.scheduler import Scheduler, numpy_available, shared_arena
from repro.primitives.node_algorithms import (
    FloodMaxAlgorithm,
    GreedyClassSweepAlgorithm,
    LinialColorReductionAlgorithm,
)


class MixedSendPattern(NodeAlgorithm):
    """Exercises every delivery path of the columnar engine at once.

    By ``unique_id % 3`` a node, each round: broadcasts one shared
    tuple through every port (the broadcast-column pull path), sends a
    distinct payload per *even* port (the partial push path), or stays
    silent.  Receivers accumulate ``list(inbox.items())`` per round, so
    the *iteration order* of every inbox — not just its contents — is
    part of the output the equivalence check diffs.
    """

    def __init__(self, horizon: int) -> None:
        self._horizon = horizon

    def initialize(self, ctx):
        ctx.state["round"] = 0
        ctx.state["seen"] = []

    def compose_messages(self, ctx):
        mode = ctx.unique_id % 3
        if mode == 0:
            message = ("bcast", ctx.unique_id, ctx.state["round"])
            return dict.fromkeys(range(ctx.degree), message)
        if mode == 1:
            return {
                port: ("uni", ctx.unique_id, port)
                for port in range(0, ctx.degree, 2)
            }
        return {}

    def receive_messages(self, ctx, inbox):
        ctx.state["seen"].append(list(inbox.items()))
        ctx.state["round"] += 1
        if ctx.state["round"] >= self._horizon:
            ctx.halt()

    def output(self, ctx):
        return ctx.state["seen"]


def _random_graph(seed: int) -> nx.Graph:
    rng = random.Random(seed)
    n = rng.randint(6, 14)
    p = rng.uniform(0.2, 0.6)
    return nx.gnp_random_graph(n, p, seed=seed)


def _assert_equivalent(network: Network, make_algorithm, max_rounds=10_000):
    """Run every engine with fresh algorithm instances and diff results.

    When numpy is importable the vectorized engine joins the diff, so
    the whole zoo of cases below pins ``numpy == list == reference``,
    not just the list engine against the seed loop.
    """
    ref = reference_run(network, make_algorithm(), max_rounds=max_rounds)
    fast = Scheduler(network, max_rounds=max_rounds).run(make_algorithm())
    assert ref.rounds == fast.rounds
    assert ref.messages_sent == fast.messages_sent
    assert ref.outputs == fast.outputs
    if numpy_available():
        vectored = Scheduler(
            network, max_rounds=max_rounds, engine="numpy"
        ).run(make_algorithm())
        assert ref.rounds == vectored.rounds
        assert ref.messages_sent == vectored.messages_sent
        assert ref.outputs == vectored.outputs
    return fast


class TestFastPathMatchesReference:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("id_seed", [None, 3])
    def test_floodmax_on_random_graphs(self, seed, id_seed):
        """20 cells: random graph x ID assignment, multi-round flood."""
        graph = _random_graph(seed)
        ids = assign_unique_ids(graph, seed=id_seed)
        network = Network(graph, ids=ids)
        horizon = 1 + seed % 5
        _assert_equivalent(network, lambda: FloodMaxAlgorithm(horizon))

    @pytest.mark.parametrize("seed", range(5))
    def test_linial_on_random_line_graphs(self, seed):
        graph = _random_graph(seed)
        if graph.number_of_edges() == 0:
            pytest.skip("edgeless instance")
        ids = assign_unique_ids(graph, seed=seed)
        network = line_graph_network(graph, node_ids=ids)
        _assert_equivalent(
            network,
            lambda: LinialColorReductionAlgorithm(id_space=network.max_id()),
        )

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_full_linial_greedy_pipeline(self, seed):
        """Both stages of the message-passing pipeline, reference vs
        fast, including the stage-1 -> stage-2 stitching."""
        graph = _random_graph(seed)
        if graph.number_of_edges() == 0:
            pytest.skip("edgeless instance")
        delta = max_degree(graph)
        ids = assign_unique_ids(graph, seed=2)
        network = line_graph_network(graph, node_ids=ids)

        stage1 = _assert_equivalent(
            network,
            lambda: LinialColorReductionAlgorithm(id_space=network.max_id()),
        )
        classes = dict(stage1.outputs)
        class_palette = max(classes.values()) + 1
        palette = frozenset(range(1, max(2, 2 * delta)))
        lists = {edge: palette for edge in edge_set(graph)}
        _assert_equivalent(
            network,
            lambda: GreedyClassSweepAlgorithm(classes, lists, class_palette),
            max_rounds=100_000,
        )

    def test_max_message_size_matches_reference(self):
        graph = _random_graph(4)
        network = Network(graph)
        ref = reference_run(network, FloodMaxAlgorithm(3))
        fast = Scheduler(network).run(FloodMaxAlgorithm(3))
        assert ref.max_message_size == fast.max_message_size

    def test_max_message_size_exact_for_mutated_payloads(self):
        """Payloads mutated after sending must be sized at send time,
        exactly like the reference's eager accounting."""
        from repro.model.algorithm import NodeAlgorithm

        class GrowThenShrink(NodeAlgorithm):
            """Round 1: send a big shared list; round 2: clear it and
            send it again (small); then halt."""

            def initialize(self, ctx):
                ctx.state["payload"] = list(range(50))
                ctx.state["round"] = 0

            def compose_messages(self, ctx):
                return {port: ctx.state["payload"] for port in range(ctx.degree)}

            def receive_messages(self, ctx, inbox):
                ctx.state["round"] += 1
                ctx.state["payload"].clear()
                if ctx.state["round"] >= 2:
                    ctx.halt()

            def output(self, ctx):
                return None

        network = Network(nx.path_graph(3))
        ref = reference_run(network, GrowThenShrink())
        fast = Scheduler(network).run(GrowThenShrink())
        assert ref.max_message_size == fast.max_message_size
        assert fast.max_message_size == len(repr(list(range(50))))

    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_push_pull_rounds_preserve_inbox_order(self, seed):
        """Broadcast, partial-push and silent senders in the same
        round: contents *and* iteration order of every inbox must
        match the reference (the outputs embed list(inbox.items()))."""
        graph = _random_graph(seed)
        ids = assign_unique_ids(graph, seed=seed % 3 or None)
        network = Network(graph, ids=ids)
        _assert_equivalent(network, lambda: MixedSendPattern(3 + seed % 3))

    def test_equal_but_distinct_payloads_are_not_collapsed(self):
        """The broadcast column requires the *same object* on every
        port: ==-equal but distinct payloads (1 vs 1.0, fresh tuples)
        must keep exact per-port delivery and size accounting."""

        class EqualNotIdentical(NodeAlgorithm):
            def initialize(self, ctx):
                ctx.state["seen"] = []

            def compose_messages(self, ctx):
                # Port 0 sends int 1, later ports send float 1.0 —
                # all == equal, none interchangeable for CONGEST or
                # repr-size purposes.
                return {
                    port: 1 if port == 0 else 1.0
                    for port in range(ctx.degree)
                }

            def receive_messages(self, ctx, inbox):
                ctx.state["seen"] = [
                    (port, value, type(value).__name__)
                    for port, value in inbox.items()
                ]
                ctx.halt()

            def output(self, ctx):
                return ctx.state["seen"]

        network = Network(nx.path_graph(3))
        ref = reference_run(network, EqualNotIdentical())
        fast = Scheduler(network).run(EqualNotIdentical())
        assert ref.outputs == fast.outputs
        assert ref.max_message_size == fast.max_message_size == len("1.0")

    def test_noninteger_ports_raise_like_the_reference(self):
        """Float port keys — integral or not — must not slip through
        the broadcast path's pigeonhole check."""

        class FloatPorts(NodeAlgorithm):
            def compose_messages(self, ctx):
                if ctx.degree >= 2:
                    keys = [0, 1.5] + list(range(2, ctx.degree))
                    return dict.fromkeys(keys, "x")
                return dict.fromkeys(range(ctx.degree), "x")

            def receive_messages(self, ctx, inbox):
                ctx.halt()

            def output(self, ctx):
                return None

        network = Network(nx.star_graph(3))
        with pytest.raises(TypeError):
            reference_run(network, FloatPorts())
        with pytest.raises(TypeError):
            Scheduler(network).run(FloatPorts())
        if numpy_available():
            # The vectorized engine must not let ndarray indexing
            # silently truncate a fractional port to an int slot.
            with pytest.raises(TypeError):
                Scheduler(network, engine="numpy").run(FloatPorts())

    def test_mixed_pattern_under_a_shared_arena(self):
        """Arena reuse across back-to-back runs must not leak stale
        slots into later executions (stamps are monotone)."""
        graphs = [_random_graph(s) for s in (2, 8)]
        networks = [Network(g, ids=assign_unique_ids(g)) for g in graphs]
        with shared_arena():
            for network in networks + networks:  # reuse both twice
                _assert_equivalent(network, lambda: MixedSendPattern(3))
                _assert_equivalent(network, lambda: FloodMaxAlgorithm(2))

    @pytest.mark.slow
    def test_equivalence_on_10k_node_instance(self):
        """Acceptance anchor: the columnar engine stays bit-identical
        to the seed loop on a 10,000-node instance (the scale the
        recorded BENCH_scheduler.json rows are measured at)."""
        graph = random_regular(6, 10_000, seed=11)
        ids = assign_unique_ids(graph, seed=5)
        network = Network(graph, ids=ids)
        fast = _assert_equivalent(network, lambda: FloodMaxAlgorithm(2))
        assert fast.messages_sent == 10_000 * 6 * 2

    def test_trace_matches_reference(self):
        graph = _random_graph(5)
        network = Network(graph)
        ref = reference_run(network, FloodMaxAlgorithm(2), record_trace=True)
        fast = Scheduler(network, record_trace=True).run(FloodMaxAlgorithm(2))
        assert len(ref.trace) == len(fast.trace)
        assert {
            (m.sender, m.receiver, m.round_index, m.payload) for m in ref.trace
        } == {
            (m.sender, m.receiver, m.round_index, m.payload) for m in fast.trace
        }


class TestConsumerDeterminism:
    """Luby and the full BKO20 solver: canonical ordering means results
    do not depend on graph-construction insertion order."""

    @staticmethod
    def _shuffled_copy(graph: nx.Graph, seed: int) -> nx.Graph:
        edges = list(graph.edges())
        random.Random(seed).shuffle(edges)
        copy = nx.Graph()
        copy.add_nodes_from(reversed(sorted(graph.nodes(), key=repr)))
        copy.add_edges_from(edges)
        return copy

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_luby_invariant_under_insertion_order(self, seed):
        graph = _random_graph(seed)
        if graph.number_of_edges() == 0:
            pytest.skip("edgeless instance")
        first = randomized_luby_coloring(graph, seed=7)
        second = randomized_luby_coloring(
            self._shuffled_copy(graph, seed), seed=7
        )
        assert first.rounds == second.rounds
        assert first.coloring == second.coloring

    @pytest.mark.parametrize("seed", [2, 6])
    def test_bko20_solver_invariant_under_insertion_order(self, seed):
        graph = _random_graph(seed)
        if graph.number_of_edges() == 0:
            pytest.skip("edgeless instance")
        first = solve_edge_coloring(graph, seed=3)
        second = solve_edge_coloring(self._shuffled_copy(graph, seed), seed=3)
        assert first.rounds == second.rounds
        assert first.coloring == second.coloring
