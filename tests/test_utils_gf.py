"""Tests for GF(q) polynomial machinery (the Linial step's core fact)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.utils.gf import FieldPolynomial, digits_base_q


class TestDigitsBaseQ:
    def test_known_expansion(self):
        assert digits_base_q(11, 3, 4) == (2, 0, 1, 0)

    def test_zero(self):
        assert digits_base_q(0, 5, 3) == (0, 0, 0)

    def test_rejects_overflow(self):
        with pytest.raises(ParameterError):
            digits_base_q(25, 5, 2)  # needs 3 digits

    def test_rejects_bad_args(self):
        with pytest.raises(ParameterError):
            digits_base_q(-1, 5, 2)
        with pytest.raises(ParameterError):
            digits_base_q(3, 1, 2)
        with pytest.raises(ParameterError):
            digits_base_q(3, 5, 0)

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=2, max_value=97),
    )
    def test_roundtrip(self, value, q):
        length = 1
        while q**length <= value:
            length += 1
        digits = digits_base_q(value, q, length)
        reconstructed = sum(d * q**j for j, d in enumerate(digits))
        assert reconstructed == value


class TestFieldPolynomial:
    def test_evaluation_horner(self):
        poly = FieldPolynomial((2, 0, 1), 5)  # 2 + x^2 mod 5
        assert poly.evaluate(0) == 2
        assert poly.evaluate(3) == (2 + 9) % 5

    def test_from_color_roundtrip(self):
        poly = FieldPolynomial.from_color(11, 3, 4)
        assert poly.coefficients == (2, 0, 1, 0)

    def test_requires_prime_field(self):
        with pytest.raises(ParameterError):
            FieldPolynomial((1, 2), 6)

    def test_rejects_out_of_range_coefficients(self):
        with pytest.raises(ParameterError):
            FieldPolynomial((5,), 5)

    def test_rejects_cross_field_comparison(self):
        a = FieldPolynomial((1,), 5)
        b = FieldPolynomial((1,), 7)
        with pytest.raises(ParameterError):
            a.agreement_points(b)

    def test_rejects_out_of_field_point(self):
        with pytest.raises(ParameterError):
            FieldPolynomial((1, 2), 5).evaluate(5)

    @given(
        st.integers(min_value=0, max_value=10**4),
        st.integers(min_value=0, max_value=10**4),
        st.sampled_from([11, 13, 17, 19, 23]),
    )
    def test_collision_bound(self, color_a, color_b, q):
        """THE fact Linial's step rests on: distinct degree-<k
        polynomials agree on at most k-1 field points."""
        k = 1
        while q**k <= max(color_a, color_b):
            k += 1
        poly_a = FieldPolynomial.from_color(color_a, q, k)
        poly_b = FieldPolynomial.from_color(color_b, q, k)
        agreements = poly_a.agreement_points(poly_b)
        if color_a == color_b:
            assert len(agreements) == q
        else:
            assert len(agreements) <= k - 1
