"""Tests for the message-passing primitives on the simulator —
cross-validated against the functional forms."""

import networkx as nx
import pytest

from repro.coloring.verify import check_proper_edge_coloring
from repro.graphs.edges import edge_set
from repro.graphs.generators import complete_bipartite, random_regular
from repro.graphs.line_graph import line_graph_adjacency
from repro.model.edge_network import line_graph_network
from repro.model.network import Network
from repro.model.scheduler import Scheduler, run_on_graph
from repro.primitives.linial import linial_reduce
from repro.primitives.node_algorithms import (
    FloodMaxAlgorithm,
    GreedyClassSweepAlgorithm,
    LinialColorReductionAlgorithm,
    build_linial_schedule,
)
from repro.utils.logstar import log_star


class TestLinialMessagePassing:
    def test_produces_proper_coloring_on_graph(self):
        g = random_regular(4, 12, seed=7)
        net = Network(g)
        result = Scheduler(net).run(
            LinialColorReductionAlgorithm(id_space=net.max_id())
        )
        for u, v in g.edges():
            assert result.outputs[u] != result.outputs[v]

    def test_on_line_graph_gives_edge_coloring(self):
        g = complete_bipartite(4, 4)
        net = line_graph_network(g)
        result = Scheduler(net).run(
            LinialColorReductionAlgorithm(id_space=net.max_id())
        )
        check_proper_edge_coloring(g, dict(result.outputs))

    def test_rounds_match_schedule_length(self):
        g = nx.cycle_graph(20)
        net = Network(g)
        schedule = build_linial_schedule(net.max_id(), net.max_degree)
        result = Scheduler(net).run(
            LinialColorReductionAlgorithm(id_space=net.max_id())
        )
        assert result.rounds == len(schedule)
        assert result.rounds <= log_star(net.max_id()) + 4

    def test_message_passing_agrees_with_functional_rounds(self):
        """Same schedule => same number of rounds as linial_reduce on
        the same instance (both run to the fixpoint)."""
        g = random_regular(3, 10, seed=2)
        net = Network(g)
        adjacency = {node: sorted(g.neighbors(node)) for node in g.nodes()}
        functional = linial_reduce(adjacency, net.ids())
        simulated = Scheduler(net).run(
            LinialColorReductionAlgorithm(id_space=net.max_id())
        )
        # Same fixpoint-driven schedule: round counts within 1
        # (functional may stop one step earlier via its palette check).
        assert abs(simulated.rounds - functional.rounds) <= 1


class TestGreedyClassSweepMessagePassing:
    def test_colors_the_line_graph(self):
        g = complete_bipartite(3, 3)
        adjacency = line_graph_adjacency(g)
        # simple proper classes: use functional Linial
        net = line_graph_network(g)
        classes_result = linial_reduce(adjacency, net.ids())
        classes = classes_result.colors
        class_count = classes_result.palette_size
        delta = 3
        lists = {
            e: frozenset(range(1, 2 * delta)) for e in edge_set(g)
        }
        algorithm = GreedyClassSweepAlgorithm(classes, lists, class_count)
        result = Scheduler(net, max_rounds=class_count + 5).run(algorithm)
        coloring = dict(result.outputs)
        assert all(c is not None for c in coloring.values())
        check_proper_edge_coloring(g, coloring)
        assert result.rounds == class_count + 1


class TestFloodMax:
    def test_converges_to_global_max(self):
        g = nx.path_graph(7)
        result = run_on_graph(FloodMaxAlgorithm(horizon=6), g)
        assert all(value == 7 for value in result.outputs.values())

    def test_rejects_negative_horizon(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            FloodMaxAlgorithm(-1)
