"""Tests for edge-list / coloring file I/O."""

import networkx as nx
import pytest

from repro.errors import InvalidInstanceError
from repro.graphs.io import (
    read_coloring,
    read_edge_list,
    write_coloring,
    write_edge_list,
)


class TestEdgeListRoundtrip:
    def test_roundtrip(self, tmp_path):
        graph = nx.random_regular_graph(4, 10, seed=1)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert sorted(map(sorted, loaded.edges())) == sorted(
            map(sorted, graph.edges())
        )

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# mid\n1 2\n")
        graph = read_edge_list(path)
        assert graph.number_of_edges() == 2

    def test_string_labels_preserved(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("alpha beta\nbeta gamma\n")
        graph = read_edge_list(path)
        assert set(graph.nodes()) == {"alpha", "beta", "gamma"}

    def test_integer_labels_parsed(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("3 7\n")
        graph = read_edge_list(path)
        assert set(graph.nodes()) == {3, 7}

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(InvalidInstanceError):
            read_edge_list(path)

    def test_rejects_self_loop(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("5 5\n")
        with pytest.raises(InvalidInstanceError):
            read_edge_list(path)


class TestColoringRoundtrip:
    def test_roundtrip(self, tmp_path):
        coloring = {(0, 1): 3, (1, 2): 1}
        path = tmp_path / "c.txt"
        write_coloring(coloring, path)
        assert read_coloring(path) == coloring

    def test_rejects_malformed(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("0 1\n")
        with pytest.raises(InvalidInstanceError):
            read_coloring(path)
