"""Tests for Cole-Vishkin chain 3-coloring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError
from repro.primitives.chain_coloring import (
    three_color_chain,
    three_color_chains,
)
from repro.utils.chains import Chain
from repro.utils.logstar import log_star


def _check_proper(chain: Chain, colors: dict) -> None:
    for left, right in chain.neighbor_pairs():
        assert colors[left] != colors[right], f"{left} and {right} clash"


def _alternating_ids(n: int, spread: int = 1) -> dict:
    """Proper initial coloring: distinct IDs for path/cycle items."""
    return {i: (i + 1) * spread for i in range(n)}


class TestPaths:
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 10, 50, 257])
    def test_paths_of_all_lengths(self, length):
        chain = Chain(tuple(range(length)), cyclic=False)
        result = three_color_chain(chain, _alternating_ids(length))
        assert set(result.colors.values()) <= {0, 1, 2}
        _check_proper(chain, result.colors)

    def test_round_count_is_logstar_scale(self):
        length = 200
        chain = Chain(tuple(range(length)), cyclic=False)
        # Huge IDs: X = 10^18 -> still only ~log* many reduction rounds.
        ids = {i: 10**12 + i * 7919 for i in range(length)}
        result = three_color_chain(chain, ids)
        _check_proper(chain, result.colors)
        assert result.iterations <= log_star(10**13) + 3
        assert result.rounds == result.iterations + 3


class TestCycles:
    @pytest.mark.parametrize("length", [3, 4, 5, 6, 7, 12, 101])
    def test_cycles_of_all_lengths(self, length):
        chain = Chain(tuple(range(length)), cyclic=True)
        result = three_color_chain(chain, _alternating_ids(length))
        assert set(result.colors.values()) <= {0, 1, 2}
        _check_proper(chain, result.colors)

    def test_odd_cycle_needs_three_colors(self):
        chain = Chain(tuple(range(5)), cyclic=True)
        result = three_color_chain(chain, _alternating_ids(5))
        assert len(set(result.colors.values())) == 3


class TestValidation:
    def test_rejects_missing_initial_color(self):
        chain = Chain((0, 1), cyclic=False)
        with pytest.raises(InvalidInstanceError):
            three_color_chain(chain, {0: 1})

    def test_rejects_improper_initial_coloring(self):
        chain = Chain((0, 1), cyclic=False)
        with pytest.raises(InvalidInstanceError):
            three_color_chain(chain, {0: 5, 1: 5})

    def test_rejects_negative_colors(self):
        chain = Chain((0, 1), cyclic=False)
        with pytest.raises(InvalidInstanceError):
            three_color_chain(chain, {0: -1, 1: 2})


class TestParallelChains:
    def test_rounds_is_max_over_chains(self):
        chains = [
            Chain(tuple(range(10)), cyclic=False),
            Chain(tuple(range(100, 103)), cyclic=True),
        ]
        ids = {i: i + 1 for i in range(10)}
        ids.update({i: i + 1 for i in range(100, 103)})
        combined, rounds = three_color_chains(chains, ids)
        singles = [three_color_chain(c, ids).rounds for c in chains]
        assert rounds == max(singles)
        for chain in chains:
            _check_proper(chain, combined)


class TestPropertyBased:
    @settings(deadline=None, max_examples=60)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=10**9),
            min_size=1,
            max_size=64,
            unique=True,
        ),
        st.booleans(),
    )
    def test_any_unique_ids_yield_proper_3_coloring(self, ids, cyclic):
        if cyclic and len(ids) < 3:
            cyclic = False
        items = tuple(range(len(ids)))
        chain = Chain(items, cyclic=cyclic)
        initial = {item: ids[item] for item in items}
        # unique IDs are trivially proper along the chain
        result = three_color_chain(chain, initial)
        assert set(result.colors.values()) <= {0, 1, 2}
        _check_proper(chain, result.colors)
