"""Tests for the (Δ+1)-vertex coloring substrate."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ColoringValidationError
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    friendship_graph,
    random_regular,
    star_graph,
)
from repro.graphs.properties import max_degree
from repro.vertexcoloring import (
    check_proper_vertex_coloring,
    edge_coloring_via_vertex_coloring,
    greedy_sequential_vertex_coloring,
    kw_vertex_coloring,
    linial_greedy_vertex_coloring,
    randomized_vertex_coloring,
)


ALGORITHMS = [
    greedy_sequential_vertex_coloring,
    linial_greedy_vertex_coloring,
    kw_vertex_coloring,
    randomized_vertex_coloring,
]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize(
    "make_graph",
    [
        lambda: cycle_graph(9),
        lambda: complete_graph(7),
        lambda: complete_bipartite(4, 6),
        lambda: star_graph(8),
        lambda: friendship_graph(5),
        lambda: random_regular(5, 16, seed=3),
    ],
)
def test_every_algorithm_valid_on_zoo(algorithm, make_graph):
    graph = make_graph()
    result = algorithm(graph, seed=2)
    check_proper_vertex_coloring(
        graph, result.coloring, palette_size=result.palette_size
    )
    assert result.palette_size == max_degree(graph) + 1


class TestVerifier:
    def test_rejects_conflict(self):
        g = nx.path_graph(3)
        with pytest.raises(ColoringValidationError):
            check_proper_vertex_coloring(g, {0: 1, 1: 1, 2: 0})

    def test_rejects_missing_node(self):
        g = nx.path_graph(3)
        with pytest.raises(ColoringValidationError):
            check_proper_vertex_coloring(g, {0: 1, 1: 0})

    def test_rejects_foreign_node(self):
        g = nx.path_graph(2)
        with pytest.raises(ColoringValidationError):
            check_proper_vertex_coloring(g, {0: 0, 1: 1, 9: 2})

    def test_palette_bound(self):
        g = nx.path_graph(2)
        with pytest.raises(ColoringValidationError):
            check_proper_vertex_coloring(g, {0: 0, 1: 5}, palette_size=2)


class TestComplexityShapes:
    def test_kw_beats_linial_sweep_at_scale(self):
        g = random_regular(10, 40, seed=4)
        lin = linial_greedy_vertex_coloring(g, seed=1)
        kw = kw_vertex_coloring(g, seed=1)
        assert kw.rounds < lin.rounds

    def test_randomized_logarithmic(self):
        g = random_regular(6, 80, seed=5)
        result = randomized_vertex_coloring(g, seed=7)
        assert result.rounds <= 40

    def test_empty_graph(self):
        g = nx.Graph()
        for algorithm in (linial_greedy_vertex_coloring, kw_vertex_coloring):
            result = algorithm(g)
            assert result.coloring == {}


class TestEdgeColoringReduction:
    """The paper's sentence: (2Δ-1)-edge coloring is a special case of
    (Δ+1)-vertex coloring — on the line graph."""

    def test_reduction_yields_valid_edge_coloring(self):
        g = complete_bipartite(5, 5)
        coloring = edge_coloring_via_vertex_coloring(g, seed=2)
        assert len(coloring) == g.number_of_edges()
        assert max(coloring.values()) <= 2 * 5 - 1

    def test_empty_graph(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        assert edge_coloring_via_vertex_coloring(g) == {}

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10**4))
    def test_random_instances(self, seed):
        g = random_regular(4, 12, seed=seed % 53)
        coloring = edge_coloring_via_vertex_coloring(g, seed=seed % 11)
        assert len(coloring) == g.number_of_edges()


class TestDeterminism:
    @pytest.mark.parametrize(
        "algorithm", [linial_greedy_vertex_coloring, kw_vertex_coloring]
    )
    def test_deterministic_given_seed(self, algorithm):
        g = random_regular(5, 14, seed=6)
        a = algorithm(g, seed=3)
        b = algorithm(g, seed=3)
        assert a.coloring == b.coloring and a.rounds == b.rounds
