"""Tests for the sweep harness."""

from repro.analysis.harness import run_policy_sweep, run_race_sweep
from repro.core.params import fixed_policy, scaled_policy
from repro.graphs.generators import complete_bipartite, cycle_graph


class TestRaceSweep:
    def test_rows_cover_all_algorithms(self):
        graphs = [(4, complete_bipartite(2, 2)), (6, complete_bipartite(3, 3))]
        sweep = run_race_sweep(
            graphs, algorithms=["greedy_sequential", "linial_greedy"], seed=1
        )
        assert len(sweep.rows) == 2
        names = sweep.series_names()
        assert "BKO20 (this paper)" in names
        assert "greedy_sequential" in names and "linial_greedy" in names

    def test_series_extraction(self):
        graphs = [(3, cycle_graph(6))]
        sweep = run_race_sweep(graphs, algorithms=["greedy_sequential"], seed=1)
        assert sweep.xs() == [3]
        assert len(sweep.series("BKO20 (this paper)")) == 1

    def test_structural_columns_present(self):
        graphs = [(3, cycle_graph(6))]
        sweep = run_race_sweep(graphs, algorithms=[], seed=1)
        row = sweep.rows[0]
        assert row.values["n"] == 6
        assert row.values["Δ̄"] == 2


class TestPolicySweep:
    def test_one_row_per_policy(self):
        graph = complete_bipartite(4, 4)
        policies = [scaled_policy(), fixed_policy(2, 4)]
        sweep = run_policy_sweep(graph, policies, seed=2)
        assert len(sweep.rows) == 2
        assert all("rounds" in row.values for row in sweep.rows)
        assert {row.x for row in sweep.rows} == {p.name for p in policies}
