"""Tests for the sweep harness."""

import networkx as nx

from repro.analysis.harness import (
    run_policy_sweep,
    run_race_sweep,
    run_scaling_sweep,
    run_spec_sweep,
    spec_cells,
)
from repro.api import InstanceSpec, RunSpec, clear_result_cache
from repro.core.params import fixed_policy, scaled_policy
from repro.graphs.generators import complete_bipartite, cycle_graph
from repro.model.scheduler import run_on_graph
from repro.primitives.node_algorithms import FloodMaxAlgorithm


class TestRaceSweep:
    def test_rows_cover_all_algorithms(self):
        graphs = [(4, complete_bipartite(2, 2)), (6, complete_bipartite(3, 3))]
        sweep = run_race_sweep(
            graphs, algorithms=["greedy_sequential", "linial_greedy"], seed=1
        )
        assert len(sweep.rows) == 2
        names = sweep.series_names()
        assert "BKO20 (this paper)" in names
        assert "greedy_sequential" in names and "linial_greedy" in names

    def test_series_extraction(self):
        graphs = [(3, cycle_graph(6))]
        sweep = run_race_sweep(graphs, algorithms=["greedy_sequential"], seed=1)
        assert sweep.xs() == [3]
        assert len(sweep.series("BKO20 (this paper)")) == 1

    def test_structural_columns_present(self):
        graphs = [(3, cycle_graph(6))]
        sweep = run_race_sweep(graphs, algorithms=[], seed=1)
        row = sweep.rows[0]
        assert row.values["n"] == 6
        assert row.values["Δ̄"] == 2

    def test_timing_capture_optional(self):
        graphs = [(3, cycle_graph(6))]
        plain = run_race_sweep(graphs, algorithms=[], seed=1)
        assert "wall_clock_s" not in plain.rows[0].values
        timed = run_race_sweep(graphs, algorithms=[], seed=1, capture_timing=True)
        assert timed.rows[0].values["wall_clock_s"] > 0


class TestScalingSweep:
    def test_execution_results_get_throughput_columns(self):
        cells = [
            (n, lambda n=n: run_on_graph(FloodMaxAlgorithm(2), nx.cycle_graph(n)))
            for n in (6, 12)
        ]
        sweep = run_scaling_sweep(cells, x_label="n", repeats=2)
        assert sweep.xs() == [6, 12]
        for row in sweep.rows:
            assert row.values["wall_clock_s"] > 0
            assert row.values["rounds"] == 2
            assert row.values["messages_sent"] == 4 * row.x  # 2 per node per round
            assert row.values["messages_per_s"] > 0
            assert row.values["rounds_per_s"] > 0

    def test_mapping_outcomes_merge_into_row(self):
        sweep = run_scaling_sweep([(1, lambda: {"cells": 5})])
        row = sweep.rows[0]
        assert row.values["cells"] == 5
        assert "rounds" not in row.values

    def test_opaque_outcomes_still_get_wall_clock(self):
        sweep = run_scaling_sweep([("a", lambda: object())], x_label="case")
        assert sweep.x_label == "case"
        assert list(sweep.rows[0].values) == ["wall_clock_s"]


class TestSpecSweep:
    def _specs(self):
        return [
            RunSpec(
                instance=InstanceSpec(family="complete_bipartite", size=3, seed=2),
                algorithm=name,
            )
            for name in ("bko20", "linial_greedy", "kuhn_wattenhofer")
        ]

    def test_one_row_per_spec_with_registry_columns(self):
        clear_result_cache()
        sweep = run_spec_sweep(self._specs())
        assert len(sweep.rows) == 3
        assert [row.values["algorithm"] for row in sweep.rows] == [
            "bko20", "linial_greedy", "kuhn_wattenhofer",
        ]
        for row in sweep.rows:
            assert row.values["rounds"] > 0
            assert row.values["colors_used"] <= row.values["palette_size"]
            assert len(row.values["fingerprint"]) == 12

    def test_parallel_sweep_matches_serial(self):
        clear_result_cache()
        serial = run_spec_sweep(self._specs(), parallel=1)
        clear_result_cache()
        parallel = run_spec_sweep(self._specs(), parallel=2)
        assert [r.values for r in serial.rows] == [r.values for r in parallel.rows]

    def test_spec_cells_feed_the_scaling_sweep(self):
        clear_result_cache()
        specs = [
            RunSpec(instance=InstanceSpec(family="cycle", size=n, seed=1))
            for n in (6, 12)
        ]
        sweep = run_scaling_sweep(spec_cells(specs), x_label="spec")
        assert sweep.xs() == ["bko20 on cycle[6]", "bko20 on cycle[12]"]
        for row in sweep.rows:
            assert row.values["wall_clock_s"] > 0
            assert row.values["rounds"] > 0


class TestPolicySweep:
    def test_one_row_per_policy(self):
        graph = complete_bipartite(4, 4)
        policies = [scaled_policy(), fixed_policy(2, 4)]
        sweep = run_policy_sweep(graph, policies, seed=2)
        assert len(sweep.rows) == 2
        assert all("rounds" in row.values for row in sweep.rows)
        assert {row.x for row in sweep.rows} == {p.name for p in policies}
