"""Concurrency contracts of the shared on-disk store mechanics.

Multiple cluster workers legitimately share one ``cache_dir``, so the
disk layer must tolerate (1) two processes storing the same fingerprint
at once — the unique-temp-file + atomic-rename publish means a reader
can never observe a torn entry — and (2) entries vanishing mid-prune
because another process evicted them first.
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path

import pytest

from repro.api import InstanceSpec, RunSpec
from repro.api.diskcache import (
    atomic_write_json,
    disk_load,
    disk_path,
    disk_store,
    prune_cache,
    read_json,
)
from repro.api.runner import run


def _hammer_store(cache_dir: str, fingerprint: str, spec_dict: dict, rounds: int):
    """Child-process body: store the same fingerprint over and over."""
    from repro.api.diskcache import disk_store as store
    from repro.api.spec import RunSpec as Spec

    result = run(Spec.from_dict(spec_dict), cache=False)
    result.fingerprint = fingerprint
    for _ in range(rounds):
        store(cache_dir, fingerprint, result, True)


class TestConcurrentWriters:
    def test_two_processes_leave_a_single_valid_sealed_entry(self, tmp_path):
        spec = RunSpec(
            instance=InstanceSpec(family="complete_bipartite", size=3, seed=2),
            algorithm="greedy_sequential",
        )
        fingerprint = spec.fingerprint()
        ctx = multiprocessing.get_context("spawn")
        writers = [
            ctx.Process(
                target=_hammer_store,
                args=(str(tmp_path), fingerprint, spec.to_dict(), 60),
            )
            for _ in range(2)
        ]
        for proc in writers:
            proc.start()
        # Read concurrently while both writers hammer the entry: a
        # loaded entry is either absent (not yet published) or *whole*
        # — a torn publish would surface as a final invalid file below.
        while any(proc.is_alive() for proc in writers):
            disk_load(tmp_path, fingerprint)
        for proc in writers:
            proc.join()
            assert proc.exitcode == 0
        entries = list(Path(tmp_path).glob("*.json"))
        assert entries == [disk_path(tmp_path, fingerprint)]
        leftovers = [p for p in Path(tmp_path).iterdir() if p not in entries]
        assert leftovers == []  # no orphaned temp files
        final = disk_load(tmp_path, fingerprint)
        assert final is not None
        result, validated = final
        assert validated and result.fingerprint == fingerprint

    def test_atomic_write_cleans_its_temp_file_on_failure(self, tmp_path):
        class Unserializable:
            def __repr__(self):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            atomic_write_json(tmp_path / "entry.json", Unserializable())
        assert list(tmp_path.iterdir()) == []

    def test_atomic_write_publishes_whole_files_only(self, tmp_path):
        target = tmp_path / "entry.json"
        atomic_write_json(target, {"value": 1})
        atomic_write_json(target, {"value": 2})
        assert read_json(target) == {"value": 2}
        assert list(tmp_path.iterdir()) == [target]


class TestPruneConcurrency:
    def _populate(self, cache_dir: Path, count: int) -> list[Path]:
        paths = []
        for index in range(count):
            path = cache_dir / f"{index:04d}.json"
            atomic_write_json(path, {"index": index})
            os.utime(path, (index, index))
            paths.append(path)
        return paths

    def test_entry_deleted_between_glob_and_stat_is_skipped(
        self, tmp_path, monkeypatch
    ):
        paths = self._populate(tmp_path, 5)
        victim = paths[0]
        original_stat = Path.stat

        def racing_stat(self, **kwargs):
            if self == victim and os.path.exists(victim):
                os.unlink(victim)  # a concurrent pruner got here first
            return original_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        # Must not raise, and must not count the vanished entry.
        removed = prune_cache(tmp_path, 2)
        assert removed == 2
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_entry_deleted_between_stat_and_unlink_is_skipped(
        self, tmp_path, monkeypatch
    ):
        paths = self._populate(tmp_path, 5)
        victim = paths[1]
        original_unlink = Path.unlink

        def racing_unlink(self, **kwargs):
            if self == victim and os.path.exists(victim):
                os.unlink(victim)  # the other process wins the unlink
            return original_unlink(self, **kwargs)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        removed = prune_cache(tmp_path, 2)
        # The victim was removed by the *other* process: our count
        # covers only our own unlinks.
        assert removed == 2
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_all_entries_vanishing_mid_scan_is_a_clean_noop(
        self, tmp_path, monkeypatch
    ):
        self._populate(tmp_path, 3)
        original_stat = Path.stat

        def racing_stat(self, **kwargs):
            if self.suffix == ".json" and os.path.exists(self):
                os.unlink(self)
            return original_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        assert prune_cache(tmp_path, 0) == 0
        assert list(tmp_path.glob("*.json")) == []

    def test_shared_cache_dir_two_processes_storing_distinct_specs(
        self, tmp_path
    ):
        # The cluster-worker pattern: distinct fingerprints, one dir.
        specs = [
            RunSpec(
                instance=InstanceSpec(
                    family="complete_bipartite", size=3, seed=s
                ),
                algorithm="greedy_sequential",
            )
            for s in (1, 2)
        ]
        ctx = multiprocessing.get_context("spawn")
        writers = [
            ctx.Process(
                target=_hammer_store,
                args=(str(tmp_path), spec.fingerprint(), spec.to_dict(), 30),
            )
            for spec in specs
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join()
            assert proc.exitcode == 0
        for spec in specs:
            loaded = disk_load(tmp_path, spec.fingerprint())
            assert loaded is not None
        assert len(list(tmp_path.glob("*.json"))) == 2
        assert prune_cache(tmp_path, 1) == 1
