"""Tests for the palette reductions (trivial and Kuhn-Wattenhofer)."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError
from repro.graphs.generators import random_regular
from repro.graphs.properties import assign_unique_ids
from repro.primitives.color_reduction import (
    kuhn_wattenhofer_reduction,
    one_color_per_round_reduction,
)


def _graph_adjacency(graph):
    return {node: sorted(graph.neighbors(node)) for node in graph.nodes()}


def _check_proper(adjacency, colors):
    for item, neighbors in adjacency.items():
        for other in neighbors:
            assert colors[item] != colors[other]


def _spread_coloring(graph, stretch=7):
    """A proper coloring with a wasteful palette (IDs as colors)."""
    return {node: ids * stretch for node, ids in assign_unique_ids(graph).items()}


class TestOneColorPerRound:
    def test_reaches_degree_plus_one(self):
        g = random_regular(4, 14, seed=1)
        adjacency = _graph_adjacency(g)
        colors = _spread_coloring(g)
        result = one_color_per_round_reduction(adjacency, colors)
        _check_proper(adjacency, result.colors)
        assert result.palette_size == 5
        assert max(result.colors.values()) <= 4

    def test_round_count_is_palette_minus_target(self):
        g = nx.cycle_graph(8)
        adjacency = _graph_adjacency(g)
        colors = {node: node for node in g.nodes()}  # palette 8, target 3
        result = one_color_per_round_reduction(adjacency, colors)
        assert result.rounds == 8 - 3

    def test_rejects_improper_input(self):
        with pytest.raises(InvalidInstanceError):
            one_color_per_round_reduction({0: [1], 1: [0]}, {0: 2, 1: 2})

    def test_empty(self):
        result = one_color_per_round_reduction({}, {})
        assert result.palette_size == 0 and result.rounds == 0


class TestKuhnWattenhofer:
    def test_reaches_degree_plus_one(self):
        g = random_regular(5, 12, seed=3)
        adjacency = _graph_adjacency(g)
        colors = _spread_coloring(g)
        result = kuhn_wattenhofer_reduction(adjacency, colors)
        _check_proper(adjacency, result.colors)
        assert result.palette_size <= 6

    def test_logarithmically_many_phases(self):
        """Rounds ~ 2(d+1) * log(m / (d+1)) — exponentially better than
        one-per-round for large palettes."""
        g = random_regular(3, 10, seed=4)
        adjacency = _graph_adjacency(g)
        colors = {
            node: ids * 1000 for node, ids in assign_unique_ids(g).items()
        }
        m = max(colors.values()) + 1
        d = 3
        result = kuhn_wattenhofer_reduction(adjacency, colors)
        _check_proper(adjacency, result.colors)
        phases = math.ceil(math.log2(m / (d + 1))) + 1
        assert result.rounds <= 2 * (d + 1) * phases
        trivial = one_color_per_round_reduction(adjacency, colors)
        assert result.rounds < trivial.rounds / 10

    def test_already_small_palette_is_noop(self):
        g = nx.path_graph(4)
        adjacency = _graph_adjacency(g)
        colors = {0: 0, 1: 1, 2: 0, 3: 1}  # palette 2, degree 2 -> target 3
        result = kuhn_wattenhofer_reduction(adjacency, colors)
        assert result.rounds == 0
        assert result.colors == colors

    def test_rejects_improper_input(self):
        with pytest.raises(InvalidInstanceError):
            kuhn_wattenhofer_reduction({0: [1], 1: [0]}, {0: 2, 1: 2})

    @settings(deadline=None, max_examples=15)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_instances(self, degree, seed):
        n = max(degree + 2, 10)
        if (degree * n) % 2:
            n += 1
        g = random_regular(degree, n, seed=seed % 97)
        adjacency = _graph_adjacency(g)
        colors = {
            node: ids * (seed % 13 + 2)
            for node, ids in assign_unique_ids(g).items()
        }
        result = kuhn_wattenhofer_reduction(adjacency, colors)
        _check_proper(adjacency, result.colors)
        assert result.palette_size <= degree + 1
