"""Tests for the full Theorem 4.1 solver."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError
from repro.coloring.lists import ListAssignment, deg_plus_one_lists, uniform_lists
from repro.coloring.palette import Palette
from repro.coloring.verify import (
    check_list_edge_coloring,
    check_palette_bound,
    check_proper_edge_coloring,
)
from repro.core.params import fixed_policy, kuhn20_style_policy, paper_policy, scaled_policy
from repro.core.solver import (
    compute_initial_edge_coloring,
    solve_edge_coloring,
    solve_list_edge_coloring,
)
from repro.graphs.generators import (
    barbell,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    friendship_graph,
    path_graph,
    random_regular,
    star_graph,
)
from repro.graphs.properties import max_degree
from repro.utils.logstar import log_star


class TestInitialColoring:
    def test_proper_and_quadratic(self):
        g = random_regular(6, 18, seed=2)
        coloring, palette, rounds = compute_initial_edge_coloring(g, seed=3)
        check_proper_edge_coloring(g, coloring)
        dbar = 2 * 6 - 2
        assert palette <= 16 * (dbar + 2) ** 2

    def test_logstar_rounds(self):
        g = cycle_graph(256)
        _c, _p, rounds = compute_initial_edge_coloring(g, seed=7)
        n = g.number_of_nodes()
        assert rounds <= log_star(n**4) + 4


class TestEdgeColoring:
    def test_small_graph_zoo(self, small_graphs):
        for name, graph in small_graphs:
            result = solve_edge_coloring(graph, seed=1)
            summary_palette = max(1, 2 * max_degree(graph) - 1)
            check_proper_edge_coloring(graph, result.coloring)
            check_palette_bound(result.coloring, summary_palette)

    def test_single_edge(self):
        g = nx.Graph([(0, 1)])
        result = solve_edge_coloring(g)
        assert result.coloring == {(0, 1): 1}

    def test_empty_graph(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        result = solve_edge_coloring(g)
        assert result.coloring == {}

    def test_medium_instance_with_machinery(self, medium_graph):
        policy = fixed_policy(2, 4, base_degree_threshold=4, base_palette_threshold=6)
        result = solve_edge_coloring(medium_graph, policy=policy, seed=4)
        check_proper_edge_coloring(medium_graph, result.coloring)
        check_palette_bound(result.coloring, 2 * 8 - 1)
        # the machinery must actually engage on this instance
        assert result.stats.get("lem42/iterations", 0) >= 1

    def test_rounds_positive_and_ledger_consistent(self):
        g = complete_bipartite(5, 5)
        result = solve_edge_coloring(g, seed=1)
        assert result.rounds == result.ledger.total_rounds()
        assert result.rounds > 0


class TestListColoring:
    def test_deg_plus_one_adversarial_lists(self):
        g = random_regular(6, 20, seed=5)
        lists = deg_plus_one_lists(g)  # overlapping prefix lists
        result = solve_list_edge_coloring(g, lists, seed=2)
        check_list_edge_coloring(g, lists, result.coloring)

    def test_deg_plus_one_random_lists(self):
        g = random_regular(6, 20, seed=5)
        lists = deg_plus_one_lists(g, seed=13)
        result = solve_list_edge_coloring(g, lists, seed=2)
        check_list_edge_coloring(g, lists, result.coloring)

    def test_rejects_infeasible_instance(self):
        g = path_graph(3)
        bad = ListAssignment(
            {(0, 1): frozenset({1}), (1, 2): frozenset({1})}, Palette.of_size(2)
        )
        with pytest.raises(InvalidInstanceError):
            solve_list_edge_coloring(g, bad)

    def test_heterogeneous_degrees(self):
        """Barbell: dense cores with tiny-degree bridge; per-edge lists
        differ by an order of magnitude."""
        g = barbell(6, 4)
        lists = deg_plus_one_lists(g, seed=3)
        result = solve_list_edge_coloring(g, lists, seed=1)
        check_list_edge_coloring(g, lists, result.coloring)

    def test_precomputed_initial_coloring_reused(self):
        g = complete_graph(7)
        initial, palette, _rounds = compute_initial_edge_coloring(g, seed=5)
        result = solve_list_edge_coloring(
            g,
            uniform_lists(g, Palette.of_size(11)),
            initial_coloring=initial,
            initial_palette=palette,
        )
        check_proper_edge_coloring(g, result.coloring)
        assert result.initial_palette == palette


class TestPolicies:
    @pytest.mark.parametrize(
        "make_policy",
        [scaled_policy, kuhn20_style_policy, paper_policy,
         lambda: fixed_policy(2, 4), lambda: fixed_policy(3, 8)],
    )
    def test_all_policies_produce_valid_colorings(self, make_policy):
        g = random_regular(8, 24, seed=7)
        result = solve_edge_coloring(g, policy=make_policy(), seed=2)
        check_proper_edge_coloring(g, result.coloring)
        check_palette_bound(result.coloring, 15)

    def test_paper_policy_degenerates_to_base_case(self):
        """The documented behaviour: literal asymptotic constants mean
        β > Δ̄ at feasible scale, so runs report base-case fallbacks
        and zero Lemma 4.3 reductions."""
        g = random_regular(8, 24, seed=7)
        result = solve_edge_coloring(g, policy=paper_policy(), seed=2)
        assert result.stats.get("lem43/reductions", 0) == 0

    def test_policy_name_recorded(self):
        g = cycle_graph(8)
        result = solve_edge_coloring(g, policy=kuhn20_style_policy())
        assert result.policy_name == "kuhn20-style(p=2)"


class TestLemma42Observables:
    def test_dbar_trajectory_decreases(self, medium_graph):
        result = solve_edge_coloring(medium_graph, seed=3)
        trajectory = result.stats["dbar_trajectory"]
        assert trajectory == sorted(trajectory, reverse=True)
        if len(trajectory) >= 2:
            assert trajectory[1] <= trajectory[0] / 2 + 1

    def test_stats_contain_counters(self):
        g = complete_bipartite(6, 6)
        result = solve_edge_coloring(g, seed=1)
        assert "relaxed_invocations" in result.stats
        assert "dbar_trajectory" in result.stats


class TestDeterminism:
    def test_same_seed_same_result(self):
        g = random_regular(6, 16, seed=9)
        a = solve_edge_coloring(g, seed=4)
        b = solve_edge_coloring(g, seed=4)
        assert a.coloring == b.coloring
        assert a.rounds == b.rounds

    def test_different_ids_still_valid(self):
        g = random_regular(6, 16, seed=9)
        for seed in (1, 2, 3, None):
            result = solve_edge_coloring(g, seed=seed)
            check_proper_edge_coloring(g, result.coloring)


class TestPropertyBased:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_regular_always_valid(self, seed):
        g = random_regular(5, 12, seed=seed % 101)
        lists = deg_plus_one_lists(g, seed=seed)
        result = solve_list_edge_coloring(g, lists, seed=seed % 17)
        check_list_edge_coloring(g, lists, result.coloring)

    @settings(deadline=None, max_examples=8)
    @given(st.integers(min_value=3, max_value=16))
    def test_stars_any_size(self, leaves):
        g = star_graph(leaves)
        result = solve_edge_coloring(g)
        check_proper_edge_coloring(g, result.coloring)
        # a star needs exactly `leaves` colors and has 2Δ-1 available
        assert len(set(result.coloring.values())) == leaves

    @settings(deadline=None, max_examples=8)
    @given(st.integers(min_value=2, max_value=10))
    def test_friendship_graphs(self, triangles):
        g = friendship_graph(triangles)
        result = solve_edge_coloring(g, seed=1)
        check_proper_edge_coloring(g, result.coloring)
        check_palette_bound(result.coloring, 2 * 2 * triangles - 1)
