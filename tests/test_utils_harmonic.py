"""Tests for harmonic numbers (the H_p of Lemma 4.4)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.utils.harmonic import harmonic_lower_bound, harmonic_number


class TestHarmonicNumber:
    def test_base_cases(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == 1.5

    def test_h4_matches_paper_figure5_regime(self):
        # Figure 5 uses H_4; |L|=7 gives 7 / (2 * H_4) = 1.68 as the
        # k=2 threshold (so intersections of size >= 2 qualify).
        h4 = harmonic_number(4)
        assert math.isclose(h4, 25 / 12)
        assert 7 / (2 * h4) < 2

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            harmonic_number(-1)

    @given(st.integers(min_value=1, max_value=5000))
    def test_log_bracketing(self, p):
        # ln(p+1) <= H_p <= ln(p) + 1
        h = harmonic_number(p)
        assert math.log(p + 1) <= h <= math.log(p) + 1

    @given(st.integers(min_value=1, max_value=2000))
    def test_strictly_increasing(self, p):
        assert harmonic_number(p + 1) > harmonic_number(p)


class TestHarmonicLowerBound:
    def test_lemma44_arithmetic(self):
        # |L| / (k * H_p): the Figure 5 numbers.
        bound = harmonic_lower_bound(7, 2, 4)
        assert math.isclose(bound, 7 / (2 * harmonic_number(4)))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            harmonic_lower_bound(-1, 1, 1)
        with pytest.raises(ParameterError):
            harmonic_lower_bound(5, 0, 4)
        with pytest.raises(ParameterError):
            harmonic_lower_bound(5, 1, 0)

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=100),
    )
    def test_monotone_in_list_size(self, size, k, p):
        assert harmonic_lower_bound(size + 1, k, p) > harmonic_lower_bound(
            size, k, p
        ) or size + 1 == 0
