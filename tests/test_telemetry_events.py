"""The job event stream: sequenced, mergeable, resumable exactly-once.

The contracts pinned here (see :mod:`repro.telemetry.events`):

1. every emitted record carries the envelope (``kind`` / ``format`` /
   ``event`` / ``seq`` / ``worker`` / ``unix_ts``) with a per-writer
   monotone ``seq``, and the envelope always wins over colliding
   payload keys;
2. reads merge per-writer files preserving each writer's append order
   even when clocks disagree, skip torn final lines *without*
   consuming them, and resuming from any event's ``cursor`` delivers
   exactly the remainder — nothing replayed, nothing missed;
3. emission is ambient (``events_context``) or explicit, disabled by
   default, and best-effort: a broken directory records nothing and
   fails nothing;
4. a real sharded run streams the full lifecycle — and its sealed
   results stay byte-identical to a run with the stream unreadable.
"""

from __future__ import annotations

import json

import pytest

from repro.api import InstanceSpec, RunSpec, run_many
from repro.api.runner import clear_result_cache
from repro.cluster import run_sharded
from repro.results import canonical_json
from repro.telemetry.events import (
    EVENT_FORMAT,
    EVENT_TYPES,
    active_events_dir,
    emit_event,
    encode_cursor,
    events_context,
    events_dir_of,
    parse_cursor,
    read_events,
)
from repro.telemetry.ledger import worker_identity


def write_stream(directory, stem: str, rows: list[dict]) -> None:
    """Append rows to one writer's file the way a foreign process would."""
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / f"{stem}.jsonl", "a", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")


def event_row(event: str, seq: int, worker: str, ts: float, **payload) -> dict:
    return {
        "kind": "event",
        "format": EVENT_FORMAT,
        "event": event,
        "seq": seq,
        "worker": worker,
        "unix_ts": ts,
        **payload,
    }


def stripped(events: list[dict]) -> list[dict]:
    """Events minus their injected resume cursors (for comparisons)."""
    return [{k: v for k, v in e.items() if k != "cursor"} for e in events]


class TestEmit:
    def test_record_shape_and_monotone_seq(self, tmp_path):
        assert emit_event("shard_claimed", tmp_path, shard=0) is True
        assert emit_event("shard_sealed", tmp_path, shard=0) is True
        events, _ = read_events(tmp_path)
        assert [e["event"] for e in events] == ["shard_claimed", "shard_sealed"]
        assert [e["seq"] for e in events] == [1, 2]
        for event in events:
            assert event["kind"] == "event"
            assert event["format"] == EVENT_FORMAT
            assert event["worker"] == worker_identity()
            assert isinstance(event["unix_ts"], float)
        assert events[0]["shard"] == 0

    def test_envelope_keys_win_over_payload_collisions(self, tmp_path):
        emit_event(
            "dead_letter",
            tmp_path,
            seq=999,
            kind="impostor",
            worker="impostor:1",
            fingerprint="abc",
        )
        (event,), _ = read_events(tmp_path)
        assert event["event"] == "dead_letter"
        assert event["seq"] == 1
        assert event["kind"] == "event"
        assert event["worker"] == worker_identity()
        assert event["fingerprint"] == "abc"

    def test_disabled_emission_is_a_cheap_no_op(self, tmp_path):
        assert active_events_dir() is None
        assert emit_event("spec_retry", attempt=2) is False
        assert read_events(tmp_path) == ([], "")

    def test_ambient_context_installs_and_restores(self, tmp_path):
        with events_context(tmp_path) as installed:
            assert installed == str(tmp_path)
            assert active_events_dir() == str(tmp_path)
            assert emit_event("spec_resolved", disposition="executed") is True
        assert active_events_dir() is None
        events, _ = read_events(tmp_path)
        assert [e["event"] for e in events] == ["spec_resolved"]

    def test_none_context_is_a_passthrough(self, tmp_path):
        with events_context(tmp_path):
            with events_context(None) as ambient:
                assert ambient == str(tmp_path)

    def test_explicit_directory_wins_over_ambient(self, tmp_path):
        ambient = tmp_path / "ambient"
        explicit = tmp_path / "explicit"
        with events_context(ambient):
            emit_event("job_started", explicit, shards=2)
        assert read_events(explicit)[0]
        assert read_events(ambient) == ([], "")

    def test_unwritable_directory_is_swallowed(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the directory should be")
        assert emit_event("job_started", blocker / "events") is False


class TestMerge:
    def test_two_writers_interleave_by_timestamp(self, tmp_path):
        write_stream(
            tmp_path,
            "hosta-11",
            [
                event_row("shard_claimed", 1, "hosta:11", 10.0, shard=0),
                event_row("shard_sealed", 2, "hosta:11", 40.0, shard=0),
            ],
        )
        write_stream(
            tmp_path,
            "hostb-22",
            [
                event_row("shard_claimed", 1, "hostb:22", 20.0, shard=1),
                event_row("shard_sealed", 2, "hostb:22", 30.0, shard=1),
            ],
        )
        events, _ = read_events(tmp_path)
        assert [(e["worker"], e["seq"]) for e in events] == [
            ("hosta:11", 1),
            ("hostb:22", 1),
            ("hostb:22", 2),
            ("hosta:11", 2),
        ]

    def test_writer_order_survives_clock_skew(self, tmp_path):
        # hostb's clock jumps backwards mid-stream: its second event is
        # timestamped *before* its first.  The merge must never reorder
        # a single writer's story, whatever the clocks say.
        write_stream(
            tmp_path,
            "hosta-11",
            [
                event_row("job_started", 1, "hosta:11", 1.0),
                event_row("job_complete", 2, "hosta:11", 50.0),
            ],
        )
        write_stream(
            tmp_path,
            "hostb-22",
            [
                event_row("shard_claimed", 1, "hostb:22", 30.0, shard=0),
                event_row("shard_sealed", 2, "hostb:22", 2.0, shard=0),
            ],
        )
        events, _ = read_events(tmp_path)
        b_events = [e for e in events if e["worker"] == "hostb:22"]
        assert [e["seq"] for e in b_events] == [1, 2]
        assert [e["event"] for e in b_events] == [
            "shard_claimed",
            "shard_sealed",
        ]

    def test_torn_final_line_is_not_consumed_then_delivered(self, tmp_path):
        write_stream(
            tmp_path,
            "hosta-11",
            [event_row("shard_claimed", 1, "hosta:11", 1.0, shard=0)],
        )
        # A writer caught mid-append: no trailing newline yet.
        half = json.dumps(event_row("shard_sealed", 2, "hosta:11", 2.0))
        with open(tmp_path / "hosta-11.jsonl", "a", encoding="utf-8") as fh:
            fh.write(half[: len(half) // 2])
        events, cursor = read_events(tmp_path)
        assert [e["event"] for e in events] == ["shard_claimed"]
        # The append completes; resuming delivers it exactly once.
        with open(tmp_path / "hosta-11.jsonl", "a", encoding="utf-8") as fh:
            fh.write(half[len(half) // 2 :] + "\n")
        tail, _ = read_events(tmp_path, cursor)
        assert [e["event"] for e in tail] == ["shard_sealed"]
        assert tail[0]["seq"] == 2

    def test_unparseable_complete_line_is_skipped_for_good(self, tmp_path):
        write_stream(
            tmp_path,
            "hosta-11",
            [event_row("shard_claimed", 1, "hosta:11", 1.0)],
        )
        with open(tmp_path / "hosta-11.jsonl", "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
        events, cursor = read_events(tmp_path)
        assert len(events) == 1
        # The junk line is consumed: a resumed read does not retry it.
        assert read_events(tmp_path, cursor)[0] == []
        assert parse_cursor(cursor) == {"hosta-11": 2}

    def test_missing_directory_is_an_empty_stream(self, tmp_path):
        assert read_events(tmp_path / "never-written") == ([], "")

    def test_non_event_rows_are_ignored_but_counted(self, tmp_path):
        write_stream(
            tmp_path,
            "hosta-11",
            [
                {"kind": "run", "fingerprint": "f" * 64},
                event_row("shard_sealed", 1, "hosta:11", 1.0),
            ],
        )
        events, cursor = read_events(tmp_path)
        assert [e["event"] for e in events] == ["shard_sealed"]
        assert parse_cursor(cursor) == {"hosta-11": 2}


class TestCursors:
    def rows(self, tmp_path):
        write_stream(
            tmp_path,
            "hosta-11",
            [
                event_row("job_started", 1, "hosta:11", 1.0),
                event_row("shard_claimed", 2, "hosta:11", 3.0, shard=0),
                event_row("shard_sealed", 3, "hosta:11", 7.0, shard=0),
            ],
        )
        write_stream(
            tmp_path,
            "hostb-22",
            [
                event_row("shard_claimed", 1, "hostb:22", 2.0, shard=1),
                event_row("shard_sealed", 2, "hostb:22", 5.0, shard=1),
            ],
        )

    def test_resume_from_any_event_is_exactly_once(self, tmp_path):
        self.rows(tmp_path)
        full, _ = read_events(tmp_path)
        assert len(full) == 5
        for index, event in enumerate(full):
            tail, _ = read_events(tmp_path, event["cursor"])
            assert stripped(tail) == stripped(full[index + 1 :]), (
                f"resume after event {index} replayed or missed something"
            )

    def test_final_cursor_reads_empty_until_new_events(self, tmp_path):
        self.rows(tmp_path)
        _, cursor = read_events(tmp_path)
        assert read_events(tmp_path, cursor)[0] == []
        write_stream(
            tmp_path,
            "hostb-22",
            [event_row("job_complete", 3, "hostb:22", 9.0)],
        )
        tail, _ = read_events(tmp_path, cursor)
        assert [e["event"] for e in tail] == ["job_complete"]

    def test_cursor_round_trips_and_empty_means_start(self):
        counts = {"hosta-11": 3, "hostb-22": 2}
        assert parse_cursor(encode_cursor(counts)) == counts
        assert encode_cursor({}) == ""
        assert encode_cursor({"hosta-11": 0}) == ""
        assert parse_cursor("") == {}
        assert parse_cursor(None) == {}

    @pytest.mark.parametrize(
        "token", ["nonsense", "stem:", ":5", "stem:abc", "a:1~~b:2", "a:-1"]
    )
    def test_malformed_cursors_raise_value_error(self, token):
        with pytest.raises(ValueError):
            parse_cursor(token)

    def test_cursor_for_vanished_files_never_goes_backwards(self, tmp_path):
        write_stream(
            tmp_path,
            "hosta-11",
            [event_row("job_started", 1, "hosta:11", 1.0)],
        )
        events, cursor = read_events(tmp_path, "ghost-99:5")
        assert len(events) == 1
        assert parse_cursor(cursor) == {"ghost-99": 5, "hosta-11": 1}


class TestLifecycle:
    """Contract 4: a real sharded run streams its story, observationally."""

    def batch(self) -> list[RunSpec]:
        instance = InstanceSpec(family="complete_bipartite", size=3, seed=8)
        return [
            RunSpec(instance=instance, algorithm="bko20"),
            RunSpec(instance=instance, algorithm="greedy_sequential"),
            RunSpec(instance=instance, algorithm="linial_greedy"),
        ]

    def test_sharded_run_emits_the_lifecycle_in_writer_order(self, tmp_path):
        clear_result_cache()
        job_dir = tmp_path / "job"
        run_sharded(self.batch(), job_dir, shards=2, local_workers=0)
        events, _ = read_events(events_dir_of(job_dir))
        kinds = [e["event"] for e in events]
        assert set(kinds) <= set(EVENT_TYPES)
        assert kinds[0] == "job_started"
        assert kinds[-1] == "job_complete"
        assert kinds.count("shard_claimed") == 2
        assert kinds.count("shard_sealed") == 2
        resolved = [e for e in events if e["event"] == "spec_resolved"]
        assert len(resolved) == 3
        assert {e["disposition"] for e in resolved} == {"executed"}
        # Per-writer seq never goes backwards in the merged order.
        last_seq: dict[str, int] = {}
        for event in events:
            assert event["seq"] > last_seq.get(event["worker"], 0)
            last_seq[event["worker"]] = event["seq"]
        # Each shard's claim precedes its seal.
        for shard in (0, 1):
            order = [
                e["event"]
                for e in events
                if e.get("shard") == shard
                and e["event"] in ("shard_claimed", "shard_sealed")
            ]
            assert order == ["shard_claimed", "shard_sealed"]

    def test_results_identical_with_and_without_the_stream(self, tmp_path):
        specs = self.batch()
        clear_result_cache()
        with events_context(tmp_path / "events"):
            streamed = run_many(specs, cache=False)
        clear_result_cache()
        plain = run_many(specs, cache=False)
        assert [canonical_json(r.to_dict()) for r in streamed] == [
            canonical_json(r.to_dict()) for r in plain
        ]

    def test_no_event_fields_leak_into_sealed_results(self, tmp_path):
        clear_result_cache()
        job_dir = tmp_path / "job"
        run_sharded(self.batch()[:1], job_dir, shards=1, local_workers=0)
        sealed = list((job_dir / "cache").glob("*.json"))
        assert sealed
        for path in sealed:
            text = path.read_text()
            assert '"unix_ts"' not in text
            assert '"shard_sealed"' not in text
