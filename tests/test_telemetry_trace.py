"""Span tracing: exact nesting when on, a shared no-op when off.

The tracer (:mod:`repro.telemetry.trace`) is a process-global opt-in:
disabled (the default) it must allocate nothing and write nothing —
``benchmarks/bench_telemetry.py`` pins the <1% overhead claim; these
tests pin the *semantics* on both sides of the switch.
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.api import InstanceSpec, RunSpec, run
from repro.telemetry.ledger import read_ledger_rows
from repro.telemetry.trace import _NOOP, trace, trace_context, tracing_enabled


def spans(directory) -> list[dict]:
    return [
        row for row in read_ledger_rows(directory) if row.get("kind") == "span"
    ]


class TestDisabled:
    def test_disabled_returns_the_shared_noop(self):
        assert not tracing_enabled()
        span = trace("anything", key="value")
        assert span is _NOOP
        assert trace("something.else") is _NOOP

    def test_noop_span_supports_the_full_protocol(self, tmp_path):
        with trace("outer") as span:
            span.annotate(extra=1)
            with trace("inner"):
                pass
        assert list(tmp_path.iterdir()) == []  # nothing anywhere

    def test_executor_writes_no_spans_when_disabled(self, tmp_path):
        spec = RunSpec(
            instance=InstanceSpec(family="path", size=5), algorithm="bko20"
        )
        run(spec, cache=False, ledger_dir=tmp_path)
        assert spans(tmp_path) == []


class TestEnabled:
    def test_spans_nest_with_parent_ids_and_depth(self, tmp_path):
        with trace_context(tmp_path):
            assert tracing_enabled()
            with trace("outer", label="a"):
                with trace("inner", label="b") as inner:
                    inner.annotate(hit=True)
        assert not tracing_enabled()
        records = spans(tmp_path)
        assert [r["name"] for r in records] == ["inner", "outer"]  # exit order
        inner, outer = records
        assert outer["parent_id"] is None and outer["depth"] == 0
        assert inner["parent_id"] == outer["span_id"] and inner["depth"] == 1
        assert inner["fields"] == {"label": "b", "hit": True}
        assert outer["status"] == "ok"
        assert inner["observed"]["wall_clock_s"] >= 0.0

    def test_exception_sets_status_and_propagates(self, tmp_path):
        with trace_context(tmp_path):
            try:
                with trace("doomed"):
                    raise ValueError("boom")
            except ValueError:
                pass
            else:
                raise AssertionError("trace() swallowed the exception")
        (record,) = spans(tmp_path)
        assert record["status"] == "ValueError"

    def test_context_restores_previous_directory(self, tmp_path):
        outer_dir = tmp_path / "outer"
        inner_dir = tmp_path / "inner"
        with trace_context(outer_dir):
            with trace_context(inner_dir):
                with trace("in-inner"):
                    pass
            with trace("in-outer"):
                pass
        assert [s["name"] for s in spans(inner_dir)] == ["in-inner"]
        assert [s["name"] for s in spans(outer_dir)] == ["in-outer"]
        assert not tracing_enabled()

    def test_none_context_disables_tracing(self, tmp_path):
        with trace_context(tmp_path):
            with trace_context(None):
                assert not tracing_enabled()
                assert trace("off") is _NOOP
            assert tracing_enabled()
        assert spans(tmp_path) == []

    def test_executor_emits_run_attempt_spans(self, tmp_path):
        spec = RunSpec(
            instance=InstanceSpec(family="path", size=5), algorithm="bko20"
        )
        with trace_context(tmp_path):
            run(spec, cache=False)
        names = [s["name"] for s in spans(tmp_path)]
        assert "run.attempt" in names

    def test_env_var_activates_tracing_in_fresh_process(self, tmp_path):
        """REPRO_TRACE_DIR is how worker fleets inherit the switch."""
        script = (
            "from repro.telemetry.trace import trace, tracing_enabled\n"
            "assert tracing_enabled()\n"
            "with trace('from-env'):\n"
            "    pass\n"
        )
        env = dict(os.environ, REPRO_TRACE_DIR=str(tmp_path))
        env["PYTHONPATH"] = "src"
        subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert [s["name"] for s in spans(tmp_path)] == ["from-env"]
