"""Tests for the recurrence evaluators and predicted curves."""

import math

import pytest

from repro.errors import ParameterError
from repro.analysis.theory import (
    crossover_log2_dbar,
    crossover_point,
    lemma42_invocation_bound,
    lemma45_level_count,
    predicted_balliu_kuhn_olivetti,
    predicted_kuhn_soda20,
    predicted_kuhn_wattenhofer,
    predicted_linial_greedy,
    predicted_randomized,
    theorem41_depth,
)


class TestPredictedCurves:
    def test_all_curves_positive_and_monotone(self):
        models = [
            predicted_balliu_kuhn_olivetti(),
            predicted_kuhn_soda20(),
            predicted_linial_greedy(),
            predicted_kuhn_wattenhofer(),
        ]
        xs = [4, 16, 64, 256, 1024]
        for model in models:
            values = model.evaluate(xs)
            assert all(v > 0 for v in values)
            assert values == sorted(values)

    def test_randomized_is_flat_in_dbar(self):
        model = predicted_randomized(n=10**6)
        assert model.rounds(4) == model.rounds(4096)

    def test_additive_logstar_term(self):
        with_n = predicted_kuhn_soda20(n=2**65536)
        without = predicted_kuhn_soda20()
        assert with_n.rounds(16) - without.rounds(16) == pytest.approx(4)

    def test_bko_log_domain_matches_quasi_polylog_shape(self):
        """log2(T) should scale ~ (log2 log2 Δ̄)² (times the exponent),
        i.e. grow far slower than 2√(log2 Δ̄) eventually."""
        bko = predicted_balliu_kuhn_olivetti()
        k20 = predicted_kuhn_soda20()
        huge = 1e7  # log2 dbar = 10^7
        assert bko.log2_rounds(huge) < k20.log2_rounds(huge)
        small = 100.0
        assert bko.log2_rounds(small) > k20.log2_rounds(small)


class TestCrossovers:
    def test_final_crossover_bko_vs_kuhn20(self):
        """The headline reproduction number: with the paper's literal
        per-level factor log^{8c+2} Δ̄, the quasi-polylog bound
        overtakes 2^{O(√log Δ̄)} only at log2 Δ̄ ~ 10^6."""
        x = crossover_log2_dbar(
            predicted_balliu_kuhn_olivetti(), predicted_kuhn_soda20()
        )
        assert x is not None
        assert 1e5 < x < 1e7

    def test_bko_vs_linial_much_earlier(self):
        x = crossover_log2_dbar(
            predicted_balliu_kuhn_olivetti(), predicted_linial_greedy()
        )
        assert x is not None
        assert x < 1e4

    def test_crossover_point_integer_domain(self):
        k20 = predicted_kuhn_soda20()
        lin = predicted_linial_greedy()
        x = crossover_point(k20, lin, high=2**20)
        assert x is not None
        assert k20.rounds(x) < lin.rounds(x)

    def test_requires_log_forms(self):
        from repro.analysis.theory import TheoryModel

        plain = TheoryModel(name="p", rounds=lambda d: d)
        with pytest.raises(ParameterError):
            crossover_log2_dbar(plain, plain)


class TestStructuralBounds:
    def test_lemma42_bound_formula(self):
        assert lemma42_invocation_bound(2, 256, constant=1.0) == pytest.approx(
            4 * 8
        )

    def test_lemma42_rejects_bad_args(self):
        with pytest.raises(ParameterError):
            lemma42_invocation_bound(0, 5)

    def test_lemma45_level_count(self):
        assert lemma45_level_count(10**6, 10) == 6
        assert lemma45_level_count(16, 4) == 2

    def test_lemma45_rejects_bad_p(self):
        with pytest.raises(ParameterError):
            lemma45_level_count(100, 1)

    def test_theorem41_depth_loglog_scale(self):
        assert theorem41_depth(16) <= 2
        d256 = theorem41_depth(256)
        d65536 = theorem41_depth(65536)
        # doubling log dbar adds O(1) levels
        assert d65536 - d256 <= 2
        assert theorem41_depth(2**32) <= 8

    def test_paper_policy_c_validation(self):
        with pytest.raises(ParameterError):
            predicted_balliu_kuhn_olivetti(c=0)
