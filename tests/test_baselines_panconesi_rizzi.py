"""Dedicated tests for the PR-style vertex-class domination baseline."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.panconesi_rizzi import panconesi_rizzi_coloring
from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    friendship_graph,
    random_regular,
    star_graph,
)
from repro.graphs.properties import max_degree


class TestCorrectness:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: complete_graph(9),
            lambda: complete_bipartite(7, 7),
            lambda: star_graph(15),
            lambda: friendship_graph(6),
            lambda: random_regular(8, 26, seed=5),
        ],
    )
    def test_valid_on_zoo(self, make_graph):
        graph = make_graph()
        result = panconesi_rizzi_coloring(graph, seed=2)
        check_proper_edge_coloring(graph, result.coloring)
        check_palette_bound(result.coloring, 2 * max_degree(graph) - 1)

    def test_empty_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        result = panconesi_rizzi_coloring(graph)
        assert result.coloring == {}


class TestStageStructure:
    def test_stage_count_is_delta_plus_one(self):
        graph = random_regular(6, 20, seed=3)
        result = panconesi_rizzi_coloring(graph, seed=1)
        assert result.details["vertex_classes"] <= 6 + 1

    def test_sub_rounds_stay_small(self):
        """The conflict-retry loop must converge quickly: every
        rejection coincides with an accepted coloring at the contested
        endpoint."""
        graph = complete_bipartite(10, 10)
        result = panconesi_rizzi_coloring(graph, seed=1)
        assert result.details["max_sub_rounds_per_stage"] <= 10

    def test_linear_in_delta_stage_sweep(self):
        """Sweep rounds grow ~linearly with Δ (the PR shape), far
        below the quadratic Linial sweep."""
        small = panconesi_rizzi_coloring(complete_bipartite(6, 6), seed=1)
        large = panconesi_rizzi_coloring(complete_bipartite(18, 18), seed=1)
        delta_ratio = 18 / 6
        sweep_ratio = large.details["sweep_rounds"] / max(
            1, small.details["sweep_rounds"]
        )
        assert sweep_ratio <= 3 * delta_ratio  # linear-ish, not quadratic


class TestPropertyBased:
    @settings(deadline=None, max_examples=12)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_instances(self, seed):
        graph = random_regular(5, 14, seed=seed % 83)
        result = panconesi_rizzi_coloring(graph, seed=seed % 29)
        check_proper_edge_coloring(graph, result.coloring)
        check_palette_bound(result.coloring, 9)
