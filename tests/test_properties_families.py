"""Cross-family property tests: the solver and baselines must be valid
on EVERY family and list regime the library generates.

These are the broad-net invariants; per-module property tests live in
the corresponding test modules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import run_baseline
from repro.coloring.lists import deg_plus_one_lists
from repro.coloring.palette import Palette
from repro.coloring.verify import (
    check_list_edge_coloring,
    check_palette_bound,
    check_proper_edge_coloring,
)
from repro.core.solver import solve_edge_coloring, solve_list_edge_coloring
from repro.graphs.generators import (
    barbell,
    blow_up_cycle,
    book_graph,
    caterpillar,
    complete_bipartite,
    erdos_renyi,
    friendship_graph,
    grid_graph,
    hypercube,
    random_tree,
)
from repro.graphs.properties import max_degree


FAMILY_STRATEGIES = st.sampled_from([
    lambda size: complete_bipartite(max(1, size // 2), max(1, size)),
    lambda size: grid_graph(max(1, size // 2), max(2, size)),
    lambda size: hypercube(min(5, max(1, size // 2))),
    lambda size: caterpillar(max(1, size), 2),
    lambda size: friendship_graph(max(1, size)),
    lambda size: book_graph(max(1, size)),
    lambda size: barbell(max(3, size), 2),
    lambda size: blow_up_cycle(3, max(1, size // 2)),
    lambda size: random_tree(max(2, size * 2), seed=size),
    lambda size: erdos_renyi(max(4, size * 2), 0.4, seed=size),
])


class TestSolverAcrossFamilies:
    @settings(deadline=None, max_examples=25)
    @given(FAMILY_STRATEGIES, st.integers(min_value=2, max_value=7))
    def test_edge_coloring_valid_everywhere(self, family, size):
        graph = family(size)
        if graph.number_of_edges() == 0:
            return
        result = solve_edge_coloring(graph, seed=size)
        check_proper_edge_coloring(graph, result.coloring)
        check_palette_bound(
            result.coloring, max(1, 2 * max_degree(graph) - 1)
        )

    @settings(deadline=None, max_examples=15)
    @given(FAMILY_STRATEGIES, st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=10**4))
    def test_list_coloring_valid_everywhere(self, family, size, list_seed):
        graph = family(size)
        if graph.number_of_edges() == 0:
            return
        lists = deg_plus_one_lists(graph, seed=list_seed)
        result = solve_list_edge_coloring(graph, lists, seed=size)
        check_list_edge_coloring(graph, lists, result.coloring)


class TestBaselinesAcrossFamilies:
    @settings(deadline=None, max_examples=10)
    @given(
        FAMILY_STRATEGIES,
        st.integers(min_value=2, max_value=5),
        st.sampled_from([
            "linial_greedy", "kuhn_wattenhofer", "panconesi_rizzi",
            "randomized_luby",
        ]),
    )
    def test_every_baseline_everywhere(self, family, size, name):
        graph = family(size)
        if graph.number_of_edges() == 0:
            return
        result = run_baseline(name, graph, seed=size)
        check_proper_edge_coloring(graph, result.coloring)
        check_palette_bound(result.coloring, result.palette_size)


class TestAdversarialListOverlap:
    """The worst list regime: every edge's list is the FIRST
    deg(e)+1 palette colors, maximising contention."""

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=3, max_value=9))
    def test_prefix_lists(self, size):
        graph = complete_bipartite(size, size)
        lists = deg_plus_one_lists(graph)  # seed=None -> prefix lists
        result = solve_list_edge_coloring(graph, lists, seed=1)
        check_list_edge_coloring(graph, lists, result.coloring)

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=100))
    def test_disjointish_lists(self, size, seed):
        """Random lists from a LARGE palette (low overlap): neighbors
        rarely conflict, but validity must still be exact."""
        graph = blow_up_cycle(3, size)
        delta = max_degree(graph)
        palette = Palette.of_size(6 * delta)
        lists = deg_plus_one_lists(graph, palette=palette, seed=seed)
        result = solve_list_edge_coloring(graph, lists, seed=2)
        check_list_edge_coloring(graph, lists, result.coloring)
