"""Tests for the round-accounting ledger."""

import pytest

from repro.core.ledger import LedgerEntry, RoundLedger


class TestCharges:
    def test_flat_charges_add(self):
        ledger = RoundLedger()
        ledger.charge("a", 3)
        ledger.charge("b", 4)
        assert ledger.total_rounds() == 7

    def test_negative_charge_rejected(self):
        ledger = RoundLedger()
        with pytest.raises(ValueError):
            ledger.charge("bad", -1)

    def test_zero_charge_allowed(self):
        ledger = RoundLedger()
        ledger.charge("free", 0)
        assert ledger.total_rounds() == 0


class TestComposition:
    def test_sequential_adds(self):
        ledger = RoundLedger()
        with ledger.sequential("stage"):
            ledger.charge("a", 2)
            ledger.charge("b", 3)
        assert ledger.total_rounds() == 5

    def test_parallel_takes_max(self):
        ledger = RoundLedger()
        with ledger.parallel("instances"):
            ledger.charge("fast", 2)
            ledger.charge("slow", 9)
        assert ledger.total_rounds() == 9

    def test_paper_style_nesting(self):
        """The docstring example: 5 + (7 + max(3, 9)) = 21."""
        ledger = RoundLedger()
        ledger.charge("initial coloring", 5)
        with ledger.sequential("Lemma 4.2"):
            ledger.charge("defective coloring", 7)
            with ledger.parallel("subspaces"):
                with ledger.sequential("subspace 0"):
                    ledger.charge("greedy", 3)
                with ledger.sequential("subspace 1"):
                    ledger.charge("greedy", 9)
        assert ledger.total_rounds() == 21

    def test_empty_parallel_is_zero(self):
        ledger = RoundLedger()
        with ledger.parallel("nothing"):
            pass
        assert ledger.total_rounds() == 0

    def test_cursor_restored_after_exception(self):
        ledger = RoundLedger()
        with pytest.raises(RuntimeError):
            with ledger.sequential("oops"):
                raise RuntimeError("boom")
        ledger.charge("after", 2)
        assert ledger.total_rounds() == 2


class TestCounters:
    def test_bump_and_read(self):
        ledger = RoundLedger()
        ledger.bump("fallbacks")
        ledger.bump("fallbacks", 2)
        assert ledger.counter("fallbacks") == 3
        assert ledger.counter("unknown") == 0

    def test_record_max(self):
        ledger = RoundLedger()
        ledger.record_max("depth", 3)
        ledger.record_max("depth", 1)
        assert ledger.counter("depth") == 3

    def test_counters_snapshot(self):
        ledger = RoundLedger()
        ledger.bump("x")
        snapshot = ledger.counters()
        ledger.bump("x")
        assert snapshot == {"x": 1}


class TestReporting:
    def test_breakdown_contains_labels(self):
        ledger = RoundLedger()
        with ledger.sequential("Lemma 4.2"):
            ledger.charge("defective", 7)
        text = ledger.breakdown()
        assert "Lemma 4.2" in text and "defective" in text

    def test_breakdown_depth_limit(self):
        ledger = RoundLedger()
        with ledger.sequential("outer"):
            with ledger.sequential("inner"):
                ledger.charge("leaf", 1)
        shallow = ledger.breakdown(max_depth=1)
        assert "leaf" not in shallow

    def test_entry_totals(self):
        entry = LedgerEntry(label="p", mode="par", children=[
            LedgerEntry(label="a", mode="leaf", rounds=4),
            LedgerEntry(label="b", mode="leaf", rounds=6),
        ])
        assert entry.total() == 6
