"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    AlgorithmInvariantError,
    ColoringValidationError,
    InvalidInstanceError,
    ModelViolationError,
    ParameterError,
    ReproError,
    RoundLimitExceededError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            InvalidInstanceError,
            ModelViolationError,
            AlgorithmInvariantError,
            ColoringValidationError,
            RoundLimitExceededError,
            ParameterError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)

    def test_user_errors_are_value_errors(self):
        """Callers using plain ``except ValueError`` still catch bad
        inputs — part of the public contract."""
        assert issubclass(InvalidInstanceError, ValueError)
        assert issubclass(ParameterError, ValueError)

    def test_runtime_errors_are_runtime_errors(self):
        assert issubclass(ModelViolationError, RuntimeError)
        assert issubclass(AlgorithmInvariantError, RuntimeError)
        assert issubclass(RoundLimitExceededError, RuntimeError)

    def test_validation_errors_are_assertion_like(self):
        assert issubclass(ColoringValidationError, AssertionError)

    def test_single_catch_all(self):
        with pytest.raises(ReproError):
            raise ParameterError("x")
        with pytest.raises(ReproError):
            raise AlgorithmInvariantError("y")
