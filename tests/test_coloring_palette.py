"""Tests for palettes and the Lemma 4.3 palette splitting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.coloring.palette import Palette, split_palette


class TestPalette:
    def test_of_size_starts_at_one(self):
        assert list(Palette.of_size(4)) == [1, 2, 3, 4]

    def test_membership_and_len(self):
        palette = Palette.of_size(5)
        assert 3 in palette and 6 not in palette
        assert len(palette) == 5

    def test_rejects_duplicates(self):
        with pytest.raises(ParameterError):
            Palette((1, 1, 2))

    def test_restrict_preserves_order(self):
        palette = Palette((5, 3, 9, 1))
        assert Palette((5, 3, 9, 1)).restrict([9, 5]).colors == (5, 9)

    def test_empty_palette(self):
        assert len(Palette.of_size(0)) == 0


class TestSplitPalette:
    def test_paper_figure5_partition(self):
        """Figure 5: C = 20, p = 4 -> four contiguous blocks of 5."""
        blocks = split_palette(Palette.of_size(20), 4)
        assert [list(b) for b in blocks] == [
            [1, 2, 3, 4, 5],
            [6, 7, 8, 9, 10],
            [11, 12, 13, 14, 15],
            [16, 17, 18, 19, 20],
        ]

    def test_uneven_split(self):
        blocks = split_palette(Palette.of_size(10), 3)
        assert [len(b) for b in blocks] == [3, 3, 3, 1]

    def test_rejects_p_larger_than_palette(self):
        with pytest.raises(ParameterError):
            split_palette(Palette.of_size(3), 4)

    def test_empty_palette_gives_no_blocks(self):
        assert split_palette(Palette.of_size(0), 1) == []

    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=40),
    )
    def test_lemma43_partition_invariants(self, size, p):
        """q <= 2p blocks, block size <= ceil(C/p), exact partition."""
        if p > size:
            return
        palette = Palette.of_size(size)
        blocks = split_palette(palette, p)
        assert len(blocks) <= 2 * p
        assert all(len(b) <= math.ceil(size / p) for b in blocks)
        combined = [c for b in blocks for c in b]
        assert combined == list(palette)
