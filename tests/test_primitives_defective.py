"""Tests for the Section 4.1 defective edge coloring — checked against
the paper's exact promises: defect <= deg(e)/(2β), O(β²) colors,
O(log* X) rounds."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError, ParameterError
from repro.coloring.verify import check_defective_coloring, measure_defects
from repro.core.solver import compute_initial_edge_coloring
from repro.graphs.edges import edge_set
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    random_regular,
    star_graph,
)
from repro.graphs.line_graph import edge_degree
from repro.primitives.defective import defect_bound, defective_edge_coloring
from repro.utils.logstar import log_star


def _initial(graph, seed=1):
    coloring, _palette, _rounds = compute_initial_edge_coloring(graph, seed=seed)
    return coloring


@pytest.mark.parametrize("beta", [1, 2, 3, 5])
@pytest.mark.parametrize(
    "make_graph",
    [
        lambda: complete_graph(9),
        lambda: complete_bipartite(6, 6),
        lambda: random_regular(6, 20, seed=8),
        lambda: star_graph(17),
    ],
)
def test_paper_promises_hold(make_graph, beta):
    """The theorem of Section 4.1 on a zoo of graphs and betas."""
    graph = make_graph()
    initial = _initial(graph)
    result = defective_edge_coloring(graph, beta, initial)
    # (1) every edge colored, within the O(β²) bound
    check_defective_coloring(
        graph,
        result.colors,
        lambda deg: defect_bound(deg, beta),
        color_bound=result.color_count,
    )
    # (2) the color bound is 3 * 4β(4β+1)/2 = O(β²)
    assert result.color_count == 3 * (4 * beta) * (4 * beta + 1) // 2


class TestStructure:
    def test_groups_have_bounded_size(self):
        graph = complete_graph(10)
        result = defective_edge_coloring(graph, 1, _initial(graph))
        for node, node_groups in result.groups.items():
            from collections import Counter

            sizes = Counter(node_groups.values())
            assert all(size <= 4 for size in sizes.values())  # 4β = 4

    def test_single_group_means_zero_defect(self):
        """If 4β >= Δ every node has one group -> proper coloring."""
        graph = random_regular(4, 10, seed=2)
        result = defective_edge_coloring(graph, 2, _initial(graph))  # 4β=8 > 4
        defects = measure_defects(graph, result.colors)
        assert all(d == 0 for d in defects.values())

    def test_rounds_are_logstar_scale(self):
        graph = random_regular(8, 30, seed=5)
        initial = _initial(graph)
        x = max(initial.values()) + 1
        result = defective_edge_coloring(graph, 1, initial)
        # 1 exchange + chain coloring (<= log* X + 3ish) + 1 publish
        assert result.rounds <= 2 + log_star(x) + 6

    def test_empty_graph(self):
        graph = nx.Graph()
        result = defective_edge_coloring(graph, 2, {})
        assert result.colors == {}
        assert result.rounds == 0


class TestValidation:
    def test_rejects_bad_beta(self):
        graph = nx.path_graph(3)
        with pytest.raises(ParameterError):
            defective_edge_coloring(graph, 0, _initial(graph))

    def test_rejects_missing_initial_colors(self):
        graph = nx.path_graph(4)
        with pytest.raises(InvalidInstanceError):
            defective_edge_coloring(graph, 1, {(0, 1): 1})


class TestPropertyBased:
    @settings(deadline=None, max_examples=20)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_regular_instances(self, beta, seed):
        graph = random_regular(6, 16, seed=seed % 89)
        initial = _initial(graph, seed=seed % 31 + 1)
        result = defective_edge_coloring(graph, beta, initial)
        defects = measure_defects(graph, result.colors)
        for edge in edge_set(graph):
            assert defects[edge] <= defect_bound(edge_degree(graph, edge), beta)

    @settings(deadline=None, max_examples=12)
    @given(st.integers(min_value=5, max_value=30))
    def test_stars_any_size(self, leaves):
        """Stars are the extreme case: all edges share one node."""
        graph = star_graph(leaves)
        initial = _initial(graph)
        beta = 2
        result = defective_edge_coloring(graph, beta, initial)
        defects = measure_defects(graph, result.colors)
        for edge in edge_set(graph):
            assert defects[edge] <= defect_bound(edge_degree(graph, edge), beta)
