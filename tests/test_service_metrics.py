"""Service observability: /v1/metrics, measured healthz, timing headers.

The accounting side of the service tier (PR 9): every response carries
``X-Repro-Elapsed-Ms``, every finished request lands in the in-process
:class:`~repro.telemetry.metrics.MetricsRegistry` under its normalized
endpoint label, the run split (executed / coalesced / cache / failed)
reflects what the service actually did, and single runs append to the
service's own run ledger.  The Prometheus text exposition (PR 10's
``?format=prometheus``) renders the *same* snapshot — cumulative
histogram buckets, escaped labels, counters that agree with the JSON
view.  Unit tests of the registry itself (bucket math, histogram
percentiles, JSON-safety of the overflow bound) ride along at the
bottom.
"""

from __future__ import annotations

import json
import math
import threading
import time

import pytest

from repro.service import ReproService, make_server
from repro.telemetry.ledger import read_ledger_rows
from repro.telemetry.metrics import (
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    _histogram_quantile,
)
from repro.telemetry.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)

from tests.test_service import request, spec_payload


@pytest.fixture()
def live(tmp_path):
    service = ReproService(tmp_path / "data")
    server = make_server(service)
    host, port = server.server_address[:2]
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    try:
        yield service, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()


def settle(service, expected_total: int, timeout: float = 5.0) -> None:
    """Wait for ``expected_total`` requests to finish server-side.

    The handler sends the full response (Content-Length framed) before
    its ``finally`` records the request, so a client can legitimately
    observe the registry one request behind its own call sequence.
    """
    deadline = time.monotonic() + timeout
    while service.metrics.requests_total() < expected_total:
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"registry stuck at {service.metrics.requests_total()} "
                f"requests, wanted {expected_total}"
            )
        time.sleep(0.01)


class TestElapsedHeader:
    def test_every_response_is_stamped(self, live):
        _, base = live
        for method, path, payload in (
            ("GET", "/v1/healthz", None),
            ("GET", "/v1/metrics", None),
            ("POST", "/v1/run", spec_payload()),
            ("GET", "/v1/nowhere", None),  # errors are stamped too
        ):
            _, _, headers = request(method, base + path, payload)
            elapsed = headers.get("X-Repro-Elapsed-Ms")
            assert elapsed is not None, f"{method} {path} missing header"
            assert float(elapsed) >= 0.0

    def test_stream_start_is_stamped(self, live):
        import urllib.request

        _, base = live
        status, body, _ = request(
            "POST",
            base + "/v1/jobs",
            {"specs": [spec_payload()], "shards": 1, "local_workers": 0},
        )
        assert status == 201
        with urllib.request.urlopen(
            base + body["stream_url"], timeout=60
        ) as response:
            assert float(response.headers["X-Repro-Elapsed-Ms"]) >= 0.0
            response.read()


class TestMetricsEndpoint:
    def test_run_split_and_request_accounting(self, live):
        service, base = live
        request("POST", base + "/v1/run", spec_payload())  # executes
        request("POST", base + "/v1/run", spec_payload())  # cache replay
        settle(service, 2)
        status, body, _ = request("GET", base + "/v1/metrics")
        assert status == 200
        assert body["runs"]["executed"] == 1
        assert body["runs"]["cache"] == 1
        assert body["runs"]["coalesced"] == 0
        assert body["runs"]["failed"] == 0
        entry = body["requests"]["POST /v1/run"]
        assert entry["count"] == 2
        assert entry["by_status"] == {"200": 2}
        latency = entry["latency_ms"]
        assert sum(latency["histogram"].values()) == 2
        assert latency["p50"] is not None
        assert latency["max"] >= latency["mean"] > 0
        assert body["requests_total"] >= 2
        assert body["uptime_s"] >= 0.0

    def test_endpoint_labels_are_normalized(self, live):
        service, base = live
        status, body, _ = request(
            "POST",
            base + "/v1/jobs",
            {"specs": [spec_payload()], "shards": 1, "local_workers": 0},
        )
        assert status == 201
        request("GET", base + body["status_url"])
        request("GET", base + "/v1/bogus")
        settle(service, 3)
        _, metrics, _ = request("GET", base + "/v1/metrics")
        labels = set(metrics["requests"])
        assert "GET /v1/jobs/<id>" in labels  # never a raw job id
        assert not any(body["job"] in label for label in labels)
        assert metrics["requests"]["GET <other>"]["by_status"] == {"404": 1}

    def test_job_submit_and_resubmit_counters(self, live):
        _, base = live
        batch = {"specs": [spec_payload()], "shards": 1, "local_workers": 0}
        request("POST", base + "/v1/jobs", batch)
        request("POST", base + "/v1/jobs", batch)  # idempotent resubmit
        _, metrics, _ = request("GET", base + "/v1/metrics")
        assert metrics["jobs"] == {"submitted": 1, "resubmitted": 1}

    def test_failed_runs_are_counted(self, live):
        _, base = live
        poison = spec_payload(
            instance={"family": "path", "size": 4, "seed": 1},
            algorithm="bko20",
            policy="nonsense-policy",
        )
        status, body, _ = request("POST", base + "/v1/run", poison)
        if status == 200 and body.get("failed"):
            _, metrics, _ = request("GET", base + "/v1/metrics")
            assert metrics["runs"]["failed"] >= 1


class TestHealthzMeasured:
    def test_load_figures_come_from_the_registry(self, live):
        service, base = live
        request("POST", base + "/v1/run", spec_payload())
        settle(service, 1)
        status, body, _ = request("GET", base + "/v1/healthz")
        assert status == 200
        assert body["ok"] is True
        assert isinstance(body["uptime_s"], float)
        assert body["requests_total"] >= 1
        # The health request itself is in flight while counted.
        assert body["active_requests"] >= 1
        assert body["inflight_runs"] == 0
        assert body["jobs"]["total"] == 0


class TestServiceLedger:
    def test_single_runs_append_to_the_data_dir_ledger(self, live, tmp_path):
        service, base = live
        request("POST", base + "/v1/run", spec_payload())
        request("POST", base + "/v1/run", spec_payload())
        rows = [
            row
            for row in read_ledger_rows(service.ledger_dir)
            if row.get("kind") == "run"
        ]
        assert [row["disposition"] for row in rows] == [
            "executed",
            "cache_disk",
        ]
        assert len({row["fingerprint"] for row in rows}) == 1


class TestPrometheusRendering:
    """The text exposition, unit-level: synthetic snapshots in."""

    def registry(self) -> MetricsRegistry:
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.request_started()
        registry.request_finished("/v1/run", "POST", 200, 3.25)
        registry.request_started()
        registry.request_finished("/v1/run", "POST", 200, 40.0)
        registry.request_started()
        registry.request_finished("/v1/run", "POST", 400, 1.0)
        registry.observe_run("executed")
        registry.observe_run("cache")
        registry.observe_job(created=True)
        return registry

    def test_families_are_announced_and_newline_terminated(self):
        text = render_prometheus(self.registry().snapshot())
        assert text.endswith("\n")
        for family, kind in (
            ("repro_uptime_seconds", "gauge"),
            ("repro_active_requests", "gauge"),
            ("repro_http_requests_total", "counter"),
            ("repro_http_request_duration_milliseconds", "histogram"),
            ("repro_runs_total", "counter"),
            ("repro_jobs_total", "counter"),
        ):
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} {kind}" in text

    def test_counters_split_by_status_and_agree_with_json(self):
        snapshot = self.registry().snapshot()
        text = render_prometheus(snapshot)
        assert (
            'repro_http_requests_total{method="POST",endpoint="/v1/run",'
            'status="200"} 2' in text
        )
        assert (
            'repro_http_requests_total{method="POST",endpoint="/v1/run",'
            'status="400"} 1' in text
        )
        assert 'repro_runs_total{source="executed"} 1' in text
        assert 'repro_runs_total{source="cache"} 1' in text
        assert 'repro_jobs_total{action="submitted"} 1' in text

    def test_histogram_buckets_are_cumulative_to_inf(self):
        snapshot = self.registry().snapshot()
        text = render_prometheus(snapshot)
        series = {}
        prefix = "repro_http_request_duration_milliseconds_bucket{"
        for line in text.splitlines():
            if line.startswith(prefix):
                labels, _, value = line[len(prefix) :].partition("} ")
                le = dict(
                    part.split("=", 1) for part in labels.split(",")
                )["le"].strip('"')
                series[le] = int(value)
        # Latencies 1 / 3.25 / 40 ms land in the 1 / 5 / 50 bounds; the
        # running totals never decrease and +Inf equals the count.
        assert series["1"] == 1
        assert series["5"] == 2
        assert series["50"] == 3
        bounds = [str(b) for b in LATENCY_BUCKETS_MS] + ["+Inf"]
        counts = [series[b] for b in bounds]
        assert counts == sorted(counts)
        assert series["+Inf"] == 3
        entry = snapshot["requests"]["POST /v1/run"]
        sum_line = (
            'repro_http_request_duration_milliseconds_sum{method="POST",'
            f'endpoint="/v1/run"}} {entry["latency_ms"]["sum_ms"]}'
        )
        assert sum_line in text
        assert (
            'repro_http_request_duration_milliseconds_count{method="POST",'
            'endpoint="/v1/run"} 3' in text
        )

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.request_started()
        registry.request_finished('/odd"route\\with\nnoise', "GET", 200, 1.0)
        text = render_prometheus(registry.snapshot())
        assert '\\"route' in text
        assert "\\\\with" in text
        assert "\\nnoise" in text
        # The raw newline never splits a sample line.
        for line in text.splitlines():
            assert line.startswith(("#", "repro_"))

    def test_empty_registry_renders_gauges_only(self):
        text = render_prometheus(MetricsRegistry(clock=lambda: 0.0).snapshot())
        assert "repro_uptime_seconds 0" in text
        assert "repro_active_requests 0" in text
        assert "repro_http_requests_total{" not in text

    def test_content_type_names_the_text_format(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestPrometheusEndpoint:
    def test_exposition_over_http_matches_the_json_view(self, live):
        import urllib.request

        service, base = live
        request("POST", base + "/v1/run", spec_payload())
        settle(service, 1)
        with urllib.request.urlopen(
            base + "/v1/metrics?format=prometheus", timeout=60
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            assert float(response.headers["X-Repro-Elapsed-Ms"]) >= 0.0
            text = response.read().decode("utf-8")
        assert 'repro_runs_total{source="executed"} 1' in text
        assert (
            'repro_http_requests_total{method="POST",endpoint="/v1/run",'
            'status="200"} 1' in text
        )

    def test_unknown_format_is_a_400(self, live):
        _, base = live
        status, body, _ = request("GET", base + "/v1/metrics?format=xml")
        assert status == 400
        assert "format" in body["message"]


class TestMetricsRegistry:
    def test_request_lifecycle_and_gauge(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.request_started()
        assert registry.active_requests() == 1
        registry.request_finished("/v1/run", "POST", 200, 3.0)
        assert registry.active_requests() == 0
        assert registry.requests_total() == 1
        snapshot = registry.snapshot()
        entry = snapshot["requests"]["POST /v1/run"]
        assert entry["count"] == 1
        assert entry["by_status"] == {"200": 1}
        # 3ms lands in the first bucket that fits: the 5ms bound.
        assert entry["latency_ms"]["histogram"]["5"] == 1

    def test_histogram_percentiles_and_overflow(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.request_started()
        for elapsed in (1.0, 2.0, 4.0, 8.0, 1e9):  # last one overflows
            registry.request_finished("/x", "GET", 200, elapsed)
        entry = registry.snapshot()["requests"]["GET /x"]
        latency = entry["latency_ms"]
        assert latency["histogram"]["+Inf"] == 1
        assert latency["p50"] is not None
        assert latency["p99"] == "+Inf"  # JSON-safe overflow marker
        json.dumps(entry)  # the whole snapshot must serialize strictly

    def test_histogram_quantile_edges(self):
        counts = [0] * len(LATENCY_BUCKETS_MS)
        assert _histogram_quantile(counts, 0, 0.5) is None
        counts[0] = 4
        assert _histogram_quantile(counts, 4, 0.5) == float(
            LATENCY_BUCKETS_MS[0]
        )
        assert math.isfinite(float(_histogram_quantile(counts, 4, 0.99)))

    def test_run_and_job_observations(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        for source in ("executed", "coalesced", "cache", "failed"):
            registry.observe_run(source)
        registry.observe_job(created=True)
        registry.observe_job(created=False)
        snapshot = registry.snapshot()
        assert snapshot["runs"] == {
            "executed": 1,
            "coalesced": 1,
            "cache": 1,
            "failed": 1,
        }
        assert snapshot["jobs"] == {"submitted": 1, "resubmitted": 1}

    def test_unknown_run_source_is_ignored(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.observe_run("teleported")
        assert sum(registry.snapshot()["runs"].values()) == 0
