"""Tests for growth-shape fitting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.analysis.fitting import (
    classify_growth,
    doubling_ratios,
    fit_power_law,
)


class TestFitPowerLaw:
    def test_exact_quadratic(self):
        xs = [2, 4, 8, 16, 32]
        ys = [x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.prefactor == pytest.approx(1.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_linear_with_prefactor(self):
        xs = [3, 6, 12, 24]
        ys = [5 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)
        assert fit.prefactor == pytest.approx(5.0, rel=1e-6)

    def test_flat_data(self):
        fit = fit_power_law([1, 2, 4, 8], [7, 7, 7, 7])
        assert fit.exponent == pytest.approx(0.0, abs=1e-9)

    def test_rejects_bad_input(self):
        with pytest.raises(ParameterError):
            fit_power_law([1, 2], [1, 2])
        with pytest.raises(ParameterError):
            fit_power_law([1, 2, 3], [1, 2])
        with pytest.raises(ParameterError):
            fit_power_law([0, 1, 2], [1, 2, 3])

    @settings(deadline=None, max_examples=30)
    @given(
        st.floats(min_value=0.2, max_value=3.0),
        st.floats(min_value=0.5, max_value=20.0),
    )
    def test_recovers_parameters(self, exponent, prefactor):
        xs = [2.0, 4.0, 8.0, 16.0, 32.0]
        ys = [prefactor * x**exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)
        assert fit.prefactor == pytest.approx(prefactor, rel=1e-4)


class TestDoublingRatios:
    def test_quadratic_data_gives_fours(self):
        ratios = doubling_ratios([1, 4, 16, 64])
        assert all(r == pytest.approx(4.0) for r in ratios)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            doubling_ratios([1, 0, 4])


class TestClassifyGrowth:
    @pytest.mark.parametrize(
        "exponent, label",
        [(0.05, "~flat"), (0.5, "sublinear"), (1.0, "~linear"),
         (1.5, "superlinear"), (2.05, "~quadratic")],
    )
    def test_labels(self, exponent, label):
        assert classify_growth(exponent) == label
