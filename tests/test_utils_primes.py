"""Tests for prime search helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.utils.primes import is_prime, next_prime, primes_up_to


class TestIsPrime:
    def test_small_primes(self):
        assert [x for x in range(30) if is_prime(x)] == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]

    def test_carmichael_number_is_composite(self):
        assert not is_prime(561)  # 3 * 11 * 17, fools Fermat tests

    def test_larger_values(self):
        assert is_prime(7919)
        assert not is_prime(7917)

    @given(st.integers(min_value=2, max_value=20000))
    def test_agrees_with_sieve(self, n):
        sieve = set(primes_up_to(n))
        assert is_prime(n) == (n in sieve)


class TestNextPrime:
    def test_at_prime_returns_itself(self):
        assert next_prime(13) == 13

    def test_between_primes(self):
        assert next_prime(8) == 11
        assert next_prime(14) == 17

    def test_small_inputs(self):
        assert next_prime(-5) == 2
        assert next_prime(0) == 2
        assert next_prime(2) == 2

    @given(st.integers(min_value=0, max_value=50000))
    def test_is_smallest_prime_at_least_n(self, n):
        p = next_prime(n)
        assert is_prime(p)
        assert p >= n
        assert all(not is_prime(x) for x in range(max(2, n), p))


class TestPrimesUpTo:
    def test_boundaries(self):
        assert primes_up_to(1) == []
        assert primes_up_to(2) == [2]
        assert primes_up_to(10) == [2, 3, 5, 7]

    def test_prime_counting_at_1000(self):
        assert len(primes_up_to(1000)) == 168  # pi(1000)

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            primes_up_to(-1)
