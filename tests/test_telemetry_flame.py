"""Flame rollups: span trees, self/total math, and the critical path.

The contracts pinned here (see :mod:`repro.telemetry.flame`):

1. every span lands on exactly one root-down call path, so grouping
   paths by leaf name reproduces the flat per-name aggregates of
   :func:`repro.telemetry.report.rollup` **to the digit** (same
   accumulate-and-round);
2. the tree is defensive: spans whose parent record was lost become
   orphaned roots (counted, never dropped), duplicate span ids keep
   the first record, and parent-id cycles are cut instead of looping;
3. ``self_s`` is a path's total minus its direct children's totals,
   clamped at zero, and the critical path descends the heaviest child
   from the heaviest root;
4. the rendered form shows the tree, the critical path, and an honest
   empty state.
"""

from __future__ import annotations

import pytest

from repro.api import InstanceSpec, RunSpec
from repro.api.runner import clear_result_cache
from repro.cluster import run_sharded
from repro.cluster.worker import ledger_dir_of
from repro.telemetry.flame import (
    build_flame,
    critical_path,
    flame_rollup,
    format_flame,
)
from repro.telemetry.report import rollup
from repro.telemetry.trace import trace_context


def span(span_id, parent_id, name, wall) -> dict:
    return {
        "kind": "span",
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "observed": {"wall_clock_s": wall},
    }


def tree_spans() -> list[dict]:
    """One drain: a root, two attempts under it, a cache publish."""
    return [
        span("a", None, "shard.drain", 10.0),
        span("b", "a", "run.attempt", 3.0),
        span("c", "a", "run.attempt", 4.0),
        span("d", "c", "cache.publish", 1.0),
    ]


class TestBuildFlame:
    def test_paths_totals_and_self_time(self):
        flame = build_flame(tree_spans())
        assert flame["span_records"] == 4
        assert flame["orphan_spans"] == 0
        paths = flame["paths"]
        assert set(paths) == {
            "shard.drain",
            "shard.drain;run.attempt",
            "shard.drain;run.attempt;cache.publish",
        }
        root = paths["shard.drain"]
        assert root["count"] == 1
        assert root["total_s"] == 10.0
        # 10 total minus the 7 spent in direct children.
        assert root["self_s"] == 3.0
        assert root["depth"] == 1
        attempts = paths["shard.drain;run.attempt"]
        assert attempts["count"] == 2
        assert attempts["total_s"] == 7.0
        assert attempts["self_s"] == 6.0  # 7 minus the 1s publish
        leaf = paths["shard.drain;run.attempt;cache.publish"]
        assert leaf["self_s"] == leaf["total_s"] == 1.0

    def test_by_name_reconciles_with_leaf_grouped_paths(self):
        flame = build_flame(tree_spans())
        by_leaf: dict[str, float] = {}
        counts: dict[str, int] = {}
        for path, entry in flame["paths"].items():
            leaf = path.split(";")[-1]
            by_leaf[leaf] = round(by_leaf.get(leaf, 0.0) + entry["total_s"], 9)
            counts[leaf] = counts.get(leaf, 0) + entry["count"]
        assert by_leaf == {
            name: entry["wall_clock_s"]
            for name, entry in flame["by_name"].items()
        }
        assert counts == {
            name: entry["count"] for name, entry in flame["by_name"].items()
        }

    def test_overlapping_children_clamp_self_at_zero(self):
        # Concurrent children can sum past the parent's wall-clock;
        # self time clamps at zero rather than going negative.
        flame = build_flame(
            [
                span("a", None, "parent", 2.0),
                span("b", "a", "child", 1.5),
                span("c", "a", "child", 1.5),
            ]
        )
        assert flame["paths"]["parent"]["self_s"] == 0.0

    def test_empty_input_is_an_empty_flame(self):
        flame = build_flame([])
        assert flame["span_records"] == 0
        assert flame["paths"] == {}
        assert flame["critical_path"] == []


class TestTolerance:
    def test_orphaned_spans_become_counted_roots(self):
        spans = [
            span("a", None, "shard.drain", 5.0),
            # Parent record lost: this subtree roots at run.attempt.
            span("b", "vanished", "run.attempt", 2.0),
            span("c", "b", "cache.publish", 1.0),
        ]
        flame = build_flame(spans)
        # Both the orphaned root and its child resolved their path
        # through the missing record: each is flagged.
        assert flame["orphan_spans"] == 2
        assert set(flame["paths"]) == {
            "shard.drain",
            "run.attempt",
            "run.attempt;cache.publish",
        }
        # The orphan's subtree is kept, not dropped.
        assert flame["paths"]["run.attempt;cache.publish"]["total_s"] == 1.0

    def test_parent_cycles_are_cut_not_looped(self):
        spans = [
            span("a", "b", "ping", 1.0),
            span("b", "a", "pong", 2.0),
        ]
        flame = build_flame(spans)
        assert flame["span_records"] == 2
        # Each span's walk stops at the revisited id: both appear, at
        # finite depth.
        assert all(entry["depth"] == 2 for entry in flame["paths"].values())

    def test_duplicate_span_ids_keep_the_first_record(self):
        spans = [
            span("a", None, "first", 1.0),
            span("a", None, "second", 2.0),
            span("b", "a", "child", 0.5),
        ]
        flame = build_flame(spans)
        # The child resolves its parent to the first "a".
        assert "first;child" in flame["paths"]
        assert "second;child" not in flame["paths"]


class TestCriticalPath:
    def test_descends_the_heaviest_child(self):
        flame = build_flame(
            [
                span("a", None, "drain", 10.0),
                span("b", "a", "light", 2.0),
                span("c", "a", "heavy", 6.0),
                span("d", "c", "leaf", 5.0),
            ]
        )
        chain = flame["critical_path"]
        assert [step["name"] for step in chain] == ["drain", "heavy", "leaf"]
        assert chain[0]["path"] == "drain"
        assert chain[1]["path"] == "drain;heavy"
        assert chain[2]["total_s"] == 5.0

    def test_starts_at_the_heaviest_root(self):
        flame = build_flame(
            [
                span("a", None, "minor", 1.0),
                span("b", None, "major", 9.0),
            ]
        )
        assert [s["name"] for s in flame["critical_path"]] == ["major"]

    def test_empty_aggregation_has_no_path(self):
        assert critical_path({}) == []


class TestFlameRollup:
    def batch(self) -> list[RunSpec]:
        instance = InstanceSpec(family="complete_bipartite", size=3, seed=5)
        return [
            RunSpec(instance=instance, algorithm="bko20"),
            RunSpec(instance=instance, algorithm="greedy_sequential"),
        ]

    def test_reconciles_with_the_flat_report_on_a_real_job(self, tmp_path):
        clear_result_cache()
        job_dir = tmp_path / "job"
        with trace_context(ledger_dir_of(job_dir)):
            run_sharded(self.batch(), job_dir, shards=2, local_workers=0)
        flame = flame_rollup(job_dir)
        assert flame["span_records"] > 0
        flat = rollup(job_dir)["spans"]
        # Leaf-name grouping of the flame equals the flat span table —
        # the two views of one truth `repro report --flame` prints.
        assert flame["by_name"] == flat
        assert flame["critical_path"]
        names = {p.split(";")[-1] for p in flame["paths"]}
        assert "run.attempt" in names

    def test_directory_without_spans_is_an_empty_flame(self, tmp_path):
        flame = flame_rollup(tmp_path)
        assert flame["span_records"] == 0
        assert flame["paths"] == {}


class TestFormatFlame:
    def test_renders_tree_and_critical_path(self):
        text = format_flame(build_flame(tree_spans()))
        assert "spans: 4 (0 orphaned)" in text
        assert "call path" in text
        assert "shard.drain" in text
        # Children are indented under their parent.
        assert "\n  run.attempt" in text
        assert "    cache.publish" in text
        assert "critical path: shard.drain (10.000000s) -> " in text

    def test_empty_flame_renders_a_hint(self):
        text = format_flame(build_flame([]))
        assert "no span records" in text
