"""Palette-boundary facts the paper states around its main theorem.

The paper (introduction): ``(2Δ-1)``-edge coloring admits
``O(f(Δ) + log* n)`` algorithms, while ``(2Δ-2)``-edge coloring has an
``Ω(log n)`` lower bound even on bounded-degree graphs [BFH+16] — and
below that, chromatic-index facts (Vizing) bound what ANY palette can
do.  Lower bounds cannot be "run", but their finite witnesses can:

* odd cycles have chromatic index 3 = 2Δ-1 > Δ, so the 2Δ-2 = 2
  palette is infeasible — the boundary is tight already at Δ = 2;
* the Petersen graph is class 2 (chromatic index 4 = Δ+1);
* our solver, promised only 2Δ-1, matches the optimum Δ on balanced
  complete bipartite graphs' structure bound (König: bipartite graphs
  are class 1 — we check our coloring never exceeds 2Δ-1 and the
  greedy floor Δ is respected by SOME valid coloring, not necessarily
  ours).
"""

import itertools

import networkx as nx
import pytest

from repro.coloring.verify import check_proper_edge_coloring
from repro.core.solver import solve_edge_coloring
from repro.errors import ColoringValidationError
from repro.graphs.edges import edge_set
from repro.graphs.generators import cycle_graph


def _exists_proper_edge_coloring(graph: nx.Graph, colors: int) -> bool:
    """Exhaustive check (tiny graphs only): is there a proper edge
    coloring with the given palette size?"""
    edges = edge_set(graph)
    for assignment in itertools.product(range(colors), repeat=len(edges)):
        coloring = dict(zip(edges, assignment))
        try:
            check_proper_edge_coloring(graph, coloring)
            return True
        except ColoringValidationError:
            continue
    return False


class TestTwoDeltaMinusTwoBoundary:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_odd_cycles_need_three_colors(self, n):
        """2Δ-2 = 2 colors are infeasible on odd cycles — the finite
        witness behind the paper's 2Δ-1 vs 2Δ-2 dichotomy."""
        graph = cycle_graph(n)
        assert not _exists_proper_edge_coloring(graph, 2)
        assert _exists_proper_edge_coloring(graph, 3)

    @pytest.mark.parametrize("n", [4, 6])
    def test_even_cycles_need_only_two(self, n):
        graph = cycle_graph(n)
        assert _exists_proper_edge_coloring(graph, 2)

    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_solver_hits_three_on_odd_cycles(self, n):
        result = solve_edge_coloring(cycle_graph(n), seed=1)
        assert len(set(result.coloring.values())) == 3


class TestChromaticIndexAnchors:
    def test_petersen_is_class_two(self):
        """Petersen: Δ = 3 but chromatic index 4; our 2Δ-1 = 5 palette
        must still succeed, using at least 4 colors."""
        graph = nx.petersen_graph()
        result = solve_edge_coloring(graph, seed=2)
        check_proper_edge_coloring(graph, result.coloring)
        used = len(set(result.coloring.values()))
        assert 4 <= used <= 5

    def test_bipartite_koenig_floor(self):
        """König: bipartite graphs are class 1 — Δ colors suffice in
        principle; any proper coloring uses at least Δ colors at a
        max-degree node."""
        graph = nx.complete_bipartite_graph(5, 5)
        result = solve_edge_coloring(graph, seed=2)
        used = len(set(result.coloring.values()))
        assert used >= 5  # Δ is a hard floor
        assert used <= 9  # our 2Δ-1 promise
