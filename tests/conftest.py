"""Shared fixtures for the test suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.coloring.lists import deg_plus_one_lists, uniform_lists
from repro.coloring.palette import Palette
from repro.core.solver import compute_initial_edge_coloring
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    friendship_graph,
    grid_graph,
    path_graph,
    random_regular,
    star_graph,
)
from repro.graphs.properties import max_degree


@pytest.fixture
def small_graphs() -> list[tuple[str, nx.Graph]]:
    """A deterministic zoo of small instances covering degree shapes."""
    return [
        ("path_6", path_graph(6)),
        ("cycle_7", cycle_graph(7)),
        ("star_5", star_graph(5)),
        ("K_5", complete_graph(5)),
        ("K_3_4", complete_bipartite(3, 4)),
        ("grid_3x4", grid_graph(3, 4)),
        ("friendship_4", friendship_graph(4)),
        ("rr_4_10", random_regular(4, 10, seed=11)),
    ]


@pytest.fixture
def medium_graph() -> nx.Graph:
    """A single medium instance for the heavier integration tests."""
    return random_regular(8, 30, seed=3)


@pytest.fixture
def k44_instance():
    """K_{4,4} with greedy palette, lists, and an initial coloring."""
    graph = complete_bipartite(4, 4)
    delta = max_degree(graph)
    palette = Palette.of_size(2 * delta - 1)
    lists = uniform_lists(graph, palette)
    initial, initial_palette, rounds = compute_initial_edge_coloring(graph, seed=5)
    return graph, lists, initial, initial_palette


@pytest.fixture
def random_list_instance():
    """A random (deg+1)-list instance on a random regular graph."""
    graph = random_regular(6, 20, seed=9)
    lists = deg_plus_one_lists(graph, seed=17, extra=1)
    return graph, lists
