"""Tests for the Figure 6 virtual-copy construction."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.core.virtual_graph import build_virtual_graph
from repro.graphs.edges import edge_set
from repro.graphs.generators import complete_graph, random_regular, star_graph


class TestBasicConstruction:
    def test_bijection_between_real_and_virtual_edges(self):
        g = complete_graph(6)
        edges = edge_set(g)
        result = build_virtual_graph(edges, group_size=2)
        assert len(result.real_of) == len(edges)
        assert len(result.virtual_of) == len(edges)
        for real, virtual in result.virtual_of.items():
            assert result.real_of[virtual] == real

    def test_degree_bound(self):
        g = star_graph(10)
        result = build_virtual_graph(edge_set(g), group_size=3)
        assert result.max_virtual_degree() <= 3

    def test_group_size_one_isolates_every_edge(self):
        g = complete_graph(5)
        result = build_virtual_graph(edge_set(g), group_size=1)
        assert result.max_virtual_degree() == 1
        # all virtual edges are disjoint: line graph has degree 0
        for vu, vv in result.graph.edges():
            assert result.graph.degree(vu) == 1
            assert result.graph.degree(vv) == 1

    def test_large_group_size_keeps_graph_intact(self):
        g = complete_graph(5)
        result = build_virtual_graph(edge_set(g), group_size=10)
        # one copy per node: virtual graph isomorphic to the original
        assert result.graph.number_of_edges() == g.number_of_edges()
        assert result.max_virtual_degree() == 4

    def test_rejects_bad_group_size(self):
        with pytest.raises(ParameterError):
            build_virtual_graph([(0, 1)], group_size=0)

    def test_empty_edge_list(self):
        result = build_virtual_graph([], group_size=2)
        assert result.graph.number_of_nodes() == 0


class TestPaperPhaseBound:
    """Phase ℓ uses group size 2^{ℓ-2}; the virtual line graph must
    then have max edge degree <= 2^{ℓ-1} - 2."""

    @pytest.mark.parametrize("phase_level", [4, 5, 6])
    def test_virtual_line_degree_bound(self, phase_level):
        g = random_regular(10, 40, seed=3)
        group_size = 2 ** (phase_level - 2)
        result = build_virtual_graph(edge_set(g), group_size)
        for vu, vv in result.graph.edges():
            line_degree = result.graph.degree(vu) + result.graph.degree(vv) - 2
            assert line_degree <= 2 ** (phase_level - 1) - 2

    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_instances(self, group_size, seed):
        g = random_regular(6, 14, seed=seed % 71)
        edges = edge_set(g)
        result = build_virtual_graph(edges, group_size)
        assert result.max_virtual_degree() <= group_size
        assert set(result.virtual_of) == set(edges)
