"""White-box tests of the RecursiveSolver's internals.

The public tests pin down end-to-end correctness; these pin down the
mechanisms DESIGN.md promises: base-case deferral (never mis-coloring),
effective-list narrowing, the index-instance callback contract, and
the depth guard.
"""

import networkx as nx
import pytest

from repro.coloring.lists import ListAssignment, deg_plus_one_lists, uniform_lists
from repro.coloring.palette import Palette
from repro.coloring.verify import check_list_edge_coloring
from repro.core.ledger import RoundLedger
from repro.core.params import fixed_policy, scaled_policy
from repro.core.solver import RecursiveSolver, compute_initial_edge_coloring
from repro.errors import InvalidInstanceError
from repro.graphs.edges import edge_set
from repro.graphs.generators import complete_bipartite, random_regular


def _solver(graph, lists=None, policy=None, seed=3):
    if lists is None:
        lists = deg_plus_one_lists(graph, seed=1)
    initial, _p, _r = compute_initial_edge_coloring(graph, seed=seed)
    return RecursiveSolver(
        graph, lists, initial, policy or scaled_policy(), RoundLedger()
    )


class TestEffectiveLists:
    def test_narrowing_intersects_with_residual(self):
        graph = nx.star_graph(3)
        lists = uniform_lists(graph, Palette.of_size(5))
        solver = _solver(graph, lists)
        edge_a, edge_b = (0, 1), (0, 2)
        solver.master.assign(edge_a, 2)
        narrowed = {edge_b: frozenset({1, 2, 3})}
        effective = solver._effective_list(edge_b, narrowed)
        assert effective == frozenset({1, 3})  # 2 blocked by neighbor


class TestBaseCase:
    def test_base_case_defers_on_empty_effective_lists(self):
        """With an adversarially narrowed list, the base case defers
        instead of mis-coloring."""
        graph = nx.path_graph(3)
        lists = uniform_lists(graph, Palette.of_size(3))
        solver = _solver(graph, lists)
        narrowed = {
            (0, 1): frozenset({1}),
            (1, 2): frozenset(),  # impossible narrow list
        }
        solver._base_case([(0, 1), (1, 2)], narrowed, "test")
        assert solver.master.is_colored((0, 1))
        assert not solver.master.is_colored((1, 2))
        assert solver.ledger.counter("deferred_edges") == 1

    def test_base_case_completes_full_lists(self):
        graph = random_regular(4, 12, seed=2)
        lists = deg_plus_one_lists(graph, seed=9)
        solver = _solver(graph, lists)
        edges = edge_set(graph)
        work = {e: lists.list_of(e) for e in edges}
        solver._base_case(edges, work, "test")
        assert solver.master.is_complete()
        check_list_edge_coloring(graph, lists, solver.master.as_dict())

    def test_base_case_reason_counted(self):
        graph = nx.cycle_graph(5)
        solver = _solver(graph)
        edges = edge_set(graph)
        work = {e: solver.lists.list_of(e) for e in edges}
        solver._base_case(edges, work, "my-reason")
        assert solver.ledger.counter("base_case/my-reason") == 1


class TestDepthGuard:
    def test_max_depth_forces_base_case(self):
        """At max_depth the solver must go straight to the base case:
        no Lemma 4.3 reductions may be recorded."""
        policy = fixed_policy(
            2, 4, base_degree_threshold=4, base_palette_threshold=6,
            max_depth=1,
        )
        graph = complete_bipartite(25, 25)
        initial, _p, _r = compute_initial_edge_coloring(graph, seed=4)
        lists = uniform_lists(graph, Palette.of_size(49))
        solver = RecursiveSolver(graph, lists, initial, policy, RoundLedger())
        coloring = solver.solve_internal()
        check_list_edge_coloring(graph, lists, coloring)
        assert solver.ledger.counter("lem43/reductions") == 0


class TestConstruction:
    def test_missing_initial_colors_rejected(self):
        graph = nx.path_graph(3)
        lists = uniform_lists(graph, Palette.of_size(3))
        with pytest.raises(InvalidInstanceError):
            RecursiveSolver(
                graph, lists, {(0, 1): 1}, scaled_policy(), RoundLedger()
            )

    def test_solver_shares_ledger(self):
        graph = nx.cycle_graph(6)
        ledger = RoundLedger()
        lists = deg_plus_one_lists(graph)
        initial, _p, _r = compute_initial_edge_coloring(graph)
        solver = RecursiveSolver(graph, lists, initial, scaled_policy(), ledger)
        solver.solve_internal()
        assert ledger.total_rounds() > 0


class TestCleanupLoop:
    def test_cleanup_finishes_everything(self):
        """solve_internal's final loop must leave zero uncolored edges
        on any feasible instance."""
        graph = random_regular(6, 18, seed=8)
        lists = deg_plus_one_lists(graph, seed=4)
        solver = _solver(graph, lists)
        coloring = solver.solve_internal()
        assert len(coloring) == graph.number_of_edges()
        check_list_edge_coloring(graph, lists, coloring)
