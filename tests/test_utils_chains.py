"""Tests for path/cycle chain decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidInstanceError
from repro.utils.chains import Chain, chains_from_adjacency, validate_chain_cover


def _path_adjacency(n: int) -> dict:
    adj = {i: [] for i in range(n)}
    for i in range(n - 1):
        adj[i].append(i + 1)
        adj[i + 1].append(i)
    return adj


def _cycle_adjacency(n: int) -> dict:
    adj = _path_adjacency(n)
    adj[0].append(n - 1)
    adj[n - 1].append(0)
    return adj


class TestChain:
    def test_path_endpoints_have_no_wraparound(self):
        chain = Chain((1, 2, 3), cyclic=False)
        assert chain.predecessor(0) is None
        assert chain.successor(2) is None
        assert chain.successor(0) == 2

    def test_cycle_wraps(self):
        chain = Chain((1, 2, 3), cyclic=True)
        assert chain.predecessor(0) == 3
        assert chain.successor(2) == 1

    def test_neighbor_pairs_path_vs_cycle(self):
        assert Chain((1, 2, 3), cyclic=False).neighbor_pairs() == [(1, 2), (2, 3)]
        assert Chain((1, 2, 3), cyclic=True).neighbor_pairs() == [
            (1, 2), (2, 3), (3, 1),
        ]

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(InvalidInstanceError):
            Chain((), cyclic=False)
        with pytest.raises(InvalidInstanceError):
            Chain((1, 1), cyclic=False)

    def test_rejects_short_cycle(self):
        with pytest.raises(InvalidInstanceError):
            Chain((1, 2), cyclic=True)


class TestChainsFromAdjacency:
    def test_single_path(self):
        chains = chains_from_adjacency(_path_adjacency(5))
        assert len(chains) == 1
        assert not chains[0].cyclic
        assert len(chains[0]) == 5

    def test_single_cycle(self):
        chains = chains_from_adjacency(_cycle_adjacency(6))
        assert len(chains) == 1
        assert chains[0].cyclic
        assert len(chains[0]) == 6

    def test_isolated_items_become_singletons(self):
        chains = chains_from_adjacency({"a": [], "b": []})
        assert sorted(len(c) for c in chains) == [1, 1]
        assert all(not c.cyclic for c in chains)

    def test_mixed_components(self):
        adj = _path_adjacency(3)
        cycle = {f"c{i}": [f"c{(i + 1) % 4}", f"c{(i - 1) % 4}"] for i in range(4)}
        adj.update(cycle)
        chains = chains_from_adjacency(adj)
        kinds = sorted((c.cyclic, len(c)) for c in chains)
        assert kinds == [(False, 3), (True, 4)]

    def test_path_order_is_consistent(self):
        chains = chains_from_adjacency(_path_adjacency(4))
        items = chains[0].items
        # consecutive items must be adjacent in the input
        for a, b in zip(items, items[1:]):
            assert abs(a - b) == 1

    def test_rejects_degree_three(self):
        adj = {0: [1, 2, 3], 1: [0], 2: [0], 3: [0]}
        with pytest.raises(InvalidInstanceError):
            chains_from_adjacency(adj)

    def test_rejects_asymmetry(self):
        with pytest.raises(InvalidInstanceError):
            chains_from_adjacency({0: [1], 1: []})

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidInstanceError):
            chains_from_adjacency({0: [0]})

    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=6))
    def test_cover_property_on_disjoint_paths(self, lengths):
        adj: dict = {}
        label = 0
        for length in lengths:
            nodes = list(range(label, label + length))
            label += length
            for node in nodes:
                adj[node] = []
            for a, b in zip(nodes, nodes[1:]):
                adj[a].append(b)
                adj[b].append(a)
        chains = chains_from_adjacency(adj)
        validate_chain_cover(chains, adj.keys())  # raises on violation


class TestValidateChainCover:
    def test_detects_missing_item(self):
        chains = [Chain((1, 2), cyclic=False)]
        with pytest.raises(InvalidInstanceError):
            validate_chain_cover(chains, [1, 2, 3])

    def test_detects_duplicate_item(self):
        chains = [Chain((1, 2), cyclic=False), Chain((2, 3), cyclic=False)]
        with pytest.raises(InvalidInstanceError):
            validate_chain_cover(chains, [1, 2, 3])

    def test_detects_unknown_item(self):
        chains = [Chain((1, 9), cyclic=False)]
        with pytest.raises(InvalidInstanceError):
            validate_chain_cover(chains, [1])
