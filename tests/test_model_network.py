"""Tests for the network substrate (IDs, ports)."""

import networkx as nx
import pytest

from repro.errors import InvalidInstanceError, ModelViolationError
from repro.model.network import Network, network_from_edges


class TestNetworkConstruction:
    def test_default_ids_are_unique_positive(self):
        net = Network(nx.cycle_graph(5))
        values = list(net.ids().values())
        assert len(set(values)) == 5
        assert all(v >= 1 for v in values)

    def test_custom_ids_validated_for_coverage(self):
        g = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            Network(g, ids={0: 1, 1: 2})  # node 2 missing

    def test_custom_ids_validated_for_uniqueness(self):
        g = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            Network(g, ids={0: 1, 1: 1, 2: 2})

    def test_custom_ids_validated_for_positivity(self):
        g = nx.path_graph(2)
        with pytest.raises(InvalidInstanceError):
            Network(g, ids={0: 0, 1: 1})

    def test_rejects_self_loops(self):
        g = nx.Graph()
        g.add_edge(0, 0)
        with pytest.raises(InvalidInstanceError):
            Network(g)


class TestPorts:
    def test_ports_cover_neighbors_bijectively(self):
        net = Network(nx.star_graph(4))
        neighbors = net.neighbors_in_port_order(0)
        assert sorted(neighbors) == [1, 2, 3, 4]
        for port, neighbor in enumerate(neighbors):
            assert net.neighbor_at_port(0, port) == neighbor
            assert net.port_towards(0, neighbor) == port

    def test_invalid_port_raises(self):
        net = Network(nx.path_graph(3))
        with pytest.raises(ModelViolationError):
            net.neighbor_at_port(0, 5)

    def test_port_towards_non_neighbor_raises(self):
        net = Network(nx.path_graph(3))
        with pytest.raises(ModelViolationError):
            net.port_towards(0, 2)


class TestAccessors:
    def test_basic_measurements(self):
        net = Network(nx.complete_bipartite_graph(2, 3))
        assert net.n == 5
        assert net.max_degree == 3

    def test_max_id(self):
        net = Network(nx.path_graph(4), ids={0: 7, 1: 2, 2: 9, 3: 1})
        assert net.max_id() == 9

    def test_network_from_edges(self):
        net = network_from_edges([(0, 1), (1, 2)])
        assert net.n == 3
