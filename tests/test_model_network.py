"""Tests for the network substrate (IDs, ports)."""

import networkx as nx
import pytest

from repro.errors import InvalidInstanceError, ModelViolationError
from repro.model.network import Network, network_from_edges


class TestNetworkConstruction:
    def test_default_ids_are_unique_positive(self):
        net = Network(nx.cycle_graph(5))
        values = list(net.ids().values())
        assert len(set(values)) == 5
        assert all(v >= 1 for v in values)

    def test_custom_ids_validated_for_coverage(self):
        g = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            Network(g, ids={0: 1, 1: 2})  # node 2 missing

    def test_custom_ids_validated_for_uniqueness(self):
        g = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            Network(g, ids={0: 1, 1: 1, 2: 2})

    def test_custom_ids_validated_for_positivity(self):
        g = nx.path_graph(2)
        with pytest.raises(InvalidInstanceError):
            Network(g, ids={0: 0, 1: 1})

    def test_rejects_self_loops(self):
        g = nx.Graph()
        g.add_edge(0, 0)
        with pytest.raises(InvalidInstanceError):
            Network(g)


class TestPorts:
    def test_ports_cover_neighbors_bijectively(self):
        net = Network(nx.star_graph(4))
        neighbors = net.neighbors_in_port_order(0)
        assert sorted(neighbors) == [1, 2, 3, 4]
        for port, neighbor in enumerate(neighbors):
            assert net.neighbor_at_port(0, port) == neighbor
            assert net.port_towards(0, neighbor) == port

    def test_invalid_port_raises(self):
        net = Network(nx.path_graph(3))
        with pytest.raises(ModelViolationError):
            net.neighbor_at_port(0, 5)

    def test_port_towards_non_neighbor_raises(self):
        net = Network(nx.path_graph(3))
        with pytest.raises(ModelViolationError):
            net.port_towards(0, 2)


class TestCompiledTables:
    def test_indices_follow_canonical_order(self):
        net = Network(nx.cycle_graph(5))
        assert [net.node_at(i) for i in range(net.n)] == net.nodes()
        for i, node in enumerate(net.nodes()):
            assert net.index_of(node) == i

    def test_degree_and_id_tables_align_with_accessors(self):
        net = Network(nx.complete_bipartite_graph(2, 3))
        nodes = net.nodes()
        assert net.degree_table() == [net.degree(v) for v in nodes]
        assert net.ids_by_index() == [net.id_of(v) for v in nodes]

    def test_delivery_table_matches_port_api(self):
        net = Network(nx.star_graph(4))
        table = net.delivery_table()
        for node in net.nodes():
            i = net.index_of(node)
            for port in range(net.degree(node)):
                receiver = net.neighbor_at_port(node, port)
                expected = (net.index_of(receiver), net.port_towards(receiver, node))
                assert table[i][port] == expected

    def test_cached_max_degree_and_n(self):
        net = Network(nx.star_graph(7))
        assert net.n == 8
        assert net.max_degree == 7
        empty = Network(nx.Graph())
        assert empty.n == 0
        assert empty.max_degree == 0


class TestAccessors:
    def test_basic_measurements(self):
        net = Network(nx.complete_bipartite_graph(2, 3))
        assert net.n == 5
        assert net.max_degree == 3

    def test_max_id(self):
        net = Network(nx.path_graph(4), ids={0: 7, 1: 2, 2: 9, 3: 1})
        assert net.max_id() == 9

    def test_network_from_edges(self):
        net = network_from_edges([(0, 1), (1, 2)])
        assert net.n == 3
