"""Tests for the greedy class sweep."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ColoringValidationError, InvalidInstanceError
from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.coloring.lists import deg_plus_one_lists, uniform_lists
from repro.coloring.palette import Palette
from repro.coloring.verify import check_list_edge_coloring
from repro.core.solver import compute_initial_edge_coloring
from repro.graphs.edges import edge_set
from repro.graphs.generators import random_regular
from repro.primitives.greedy_class import greedy_by_classes


def _proper_classes(graph, seed=None):
    classes, palette, _rounds = compute_initial_edge_coloring(graph, seed=seed)
    return classes, palette


class TestGreedySweep:
    def test_completes_deg_plus_one_instance(self):
        g = random_regular(4, 14, seed=6)
        lists = deg_plus_one_lists(g, seed=2)
        coloring = PartialEdgeColoring(g, lists)
        classes, palette = _proper_classes(g, seed=1)
        result = greedy_by_classes(coloring, classes, class_count=palette)
        assert coloring.is_complete()
        assert result.edges_colored == g.number_of_edges()
        check_list_edge_coloring(g, lists, coloring.as_dict())

    def test_rounds_default_to_palette_size(self):
        g = nx.cycle_graph(6)
        lists = uniform_lists(g, Palette.of_size(3))
        coloring = PartialEdgeColoring(g, lists)
        classes, palette = _proper_classes(g)
        result = greedy_by_classes(coloring, classes)
        assert result.rounds == max(classes.values()) + 1

    def test_explicit_class_count_charged(self):
        g = nx.path_graph(4)
        lists = uniform_lists(g, Palette.of_size(3))
        coloring = PartialEdgeColoring(g, lists)
        classes = {e: i for i, e in enumerate(edge_set(g))}
        result = greedy_by_classes(coloring, classes, class_count=50)
        assert result.rounds == 50

    def test_skips_already_colored_edges(self):
        g = nx.path_graph(4)
        lists = uniform_lists(g, Palette.of_size(3))
        coloring = PartialEdgeColoring(g, lists)
        coloring.assign((0, 1), 1)
        classes = {e: i for i, e in enumerate(edge_set(g))}
        result = greedy_by_classes(coloring, classes)
        assert coloring.is_complete()
        assert result.edges_colored == 2

    def test_improper_classes_detected(self):
        """Adjacent edges in one class exhaust each other's lists,
        which the sweep reports loudly (never silently mis-colors)."""
        from repro.errors import AlgorithmInvariantError

        g = nx.path_graph(3)
        lists = uniform_lists(g, Palette.of_size(1))
        coloring = PartialEdgeColoring(g, lists)
        classes = {(0, 1): 0, (1, 2): 0}  # improper!
        with pytest.raises((ColoringValidationError, AlgorithmInvariantError)):
            greedy_by_classes(coloring, classes)

    def test_missing_class_raises(self):
        g = nx.path_graph(3)
        lists = uniform_lists(g, Palette.of_size(3))
        coloring = PartialEdgeColoring(g, lists)
        with pytest.raises(InvalidInstanceError):
            greedy_by_classes(coloring, {(0, 1): 0})

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=0, max_value=1000))
    def test_random_instances_complete(self, seed):
        g = random_regular(3, 10, seed=seed % 50)
        lists = deg_plus_one_lists(g, seed=seed)
        coloring = PartialEdgeColoring(g, lists)
        classes, palette = _proper_classes(g, seed=seed % 7)
        greedy_by_classes(coloring, classes, class_count=palette)
        assert coloring.is_complete()
        check_list_edge_coloring(g, lists, coloring.as_dict())
