"""Tests for table rendering."""

from repro.analysis.tables import format_ratio_row, format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "b"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0].endswith("b")
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159], [12345.6], [0.0001]])
        assert "3.14" in text
        assert "1.23e+04" in text
        assert "0.0001" in text

    def test_zero_float(self):
        assert "0" in format_table(["v"], [[0.0]])


class TestFormatSeries:
    def test_axis_and_series_names(self):
        text = format_series(
            "Δ̄", [4, 8], {"ours": [10, 20], "baseline": [30, 40]}
        )
        assert "Δ̄" in text and "ours" in text and "baseline" in text
        assert "40" in text


class TestRatioRow:
    def test_contains_both_sides(self):
        row = format_ratio_row("LEM42", "O(β² log Δ̄)", 42)
        assert "LEM42" in row and "O(β² log Δ̄)" in row and "42" in row
