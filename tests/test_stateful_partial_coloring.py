"""Stateful property testing of PartialEdgeColoring.

Hypothesis drives random interleavings of assigns, residual queries and
residual-instance extractions against an independent model; the
residual invariant and the blocked-color bookkeeping must hold after
every step, whatever the order of operations.
"""

import networkx as nx
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.coloring.lists import deg_plus_one_lists
from repro.graphs.edges import edge_set
from repro.graphs.generators import random_regular
from repro.graphs.line_graph import line_graph_adjacency


class PartialColoringMachine(RuleBasedStateMachine):
    """Random walks over the mutable coloring API."""

    @initialize(
        graph_seed=st.integers(min_value=0, max_value=30),
        list_seed=st.integers(min_value=0, max_value=1000),
    )
    def setup(self, graph_seed, list_seed):
        self.graph = random_regular(4, 10, seed=graph_seed)
        self.lists = deg_plus_one_lists(self.graph, seed=list_seed)
        self.coloring = PartialEdgeColoring(self.graph, self.lists)
        self.adjacency = line_graph_adjacency(self.graph)
        self.model: dict = {}  # independent record of assignments

    # ------------------------------------------------------------------

    @precondition(lambda self: any(
        e not in self.model and self.coloring.residual_list(e)
        for e in self.adjacency
    ))
    @rule(choice=st.integers(min_value=0, max_value=10**6))
    def assign_some_edge(self, choice):
        candidates = [
            e
            for e in sorted(self.adjacency, key=repr)
            if e not in self.model and self.coloring.residual_list(e)
        ]
        edge = candidates[choice % len(candidates)]
        colors = sorted(self.coloring.residual_list(edge))
        color = colors[choice % len(colors)]
        self.coloring.assign(edge, color)
        self.model[edge] = color

    @rule()
    def residual_instance_is_always_feasible(self):
        sub, lists = self.coloring.residual_instance()
        lists.validate_deg_plus_one(sub)  # the residual invariant

    # ------------------------------------------------------------------

    @invariant()
    def model_agrees(self):
        for edge in self.adjacency:
            assert self.coloring.color_of(edge) == self.model.get(edge)

    @invariant()
    def no_monochromatic_neighbors(self):
        for edge, color in self.model.items():
            for neighbor in self.adjacency[edge]:
                if neighbor in self.model:
                    assert self.model[neighbor] != color

    @invariant()
    def residual_lists_exclude_neighbor_colors(self):
        for edge in self.adjacency:
            if edge in self.model:
                continue
            residual = self.coloring.residual_list(edge)
            neighbor_colors = {
                self.model[n]
                for n in self.adjacency[edge]
                if n in self.model
            }
            assert not (residual & neighbor_colors)
            assert residual == self.lists.list_of(edge) - neighbor_colors

    @invariant()
    def residual_degree_counts_uncolored(self):
        for edge in self.adjacency:
            expected = sum(
                1 for n in self.adjacency[edge] if n not in self.model
            )
            assert self.coloring.residual_degree(edge) == expected


PartialColoringMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)
TestPartialColoringStateful = PartialColoringMachine.TestCase
