"""Shard planning: determinism, partition laws, sealed manifests."""

from __future__ import annotations

import json

import pytest

from repro.api import InstanceSpec, RunSpec, ScenarioSpec
from repro.cluster import ensure_plan, load_plan, load_task, plan_shards, write_plan
from repro.cluster.planner import manifest_path, task_path
from repro.errors import ClusterError


def make_specs(count: int = 6) -> list[RunSpec]:
    return [
        RunSpec(
            instance=InstanceSpec(family="complete_bipartite", size=3, seed=s),
            algorithm="greedy_sequential",
        )
        for s in range(1, count + 1)
    ]


class TestPlanShards:
    def test_every_distinct_fingerprint_in_exactly_one_shard(self):
        specs = make_specs(8)
        plan = plan_shards(specs, shards=3)
        placed = [f for group in plan.assignment for f in group]
        assert sorted(placed) == sorted(set(plan.fingerprints))

    def test_partition_is_pure_function_of_fingerprint(self):
        specs = make_specs(8)
        plan = plan_shards(specs, shards=3)
        for shard, group in enumerate(plan.assignment):
            for fingerprint in group:
                assert int(fingerprint, 16) % 3 == shard

    def test_deterministic_across_calls_and_orderings(self):
        specs = make_specs(6)
        a = plan_shards(specs, shards=4)
        b = plan_shards(list(specs), shards=4)
        assert a.assignment == b.assignment
        assert a.plan_fingerprint() == b.plan_fingerprint()
        # A reordered batch is a *different* plan (merge order differs)
        # but the same partition (content-addressed).
        c = plan_shards(list(reversed(specs)), shards=4)
        assert c.assignment == a.assignment
        assert c.plan_fingerprint() != a.plan_fingerprint()

    def test_duplicates_collapse_into_one_unit_of_work(self):
        specs = make_specs(3)
        plan = plan_shards(specs + specs, shards=2)
        assert len(plan.specs) == 6
        placed = [f for group in plan.assignment for f in group]
        assert len(placed) == 3

    def test_scenario_specs_fingerprint_into_the_plan(self):
        base = make_specs(1)[0]
        adversarial = base.with_scenario(
            ScenarioSpec(model="lossy_links", seed=3, params={"drop": 0.2})
        )
        plan = plan_shards([base, adversarial], shards=2)
        assert len(set(plan.fingerprints)) == 2

    def test_empty_batch_and_bad_shard_count_raise(self):
        with pytest.raises(ClusterError):
            plan_shards([], shards=2)
        with pytest.raises(ClusterError):
            plan_shards(make_specs(2), shards=0)

    def test_more_shards_than_specs_leaves_empty_shards(self):
        plan = plan_shards(make_specs(2), shards=8)
        sizes = [len(group) for group in plan.assignment]
        assert sum(sizes) == 2 and len(sizes) == 8


class TestPlanOnDisk:
    def test_round_trip(self, tmp_path):
        specs = make_specs(5)
        plan = plan_shards(specs, shards=3)
        write_plan(plan, tmp_path)
        loaded = load_plan(tmp_path)
        assert loaded == plan
        for shard in range(3):
            task = load_task(tmp_path, shard)
            assert sorted(task) == list(plan.assignment[shard])
            for fingerprint, spec in task.items():
                assert spec.fingerprint() == fingerprint

    def test_write_plan_is_idempotent(self, tmp_path):
        plan = plan_shards(make_specs(4), shards=2)
        write_plan(plan, tmp_path)
        before = manifest_path(tmp_path).read_bytes()
        write_plan(plan, tmp_path)
        assert manifest_path(tmp_path).read_bytes() == before

    def test_tampered_manifest_rejected(self, tmp_path):
        write_plan(plan_shards(make_specs(3), shards=2), tmp_path)
        payload = json.loads(manifest_path(tmp_path).read_text())
        payload["shards"] = 5
        manifest_path(tmp_path).write_text(json.dumps(payload))
        with pytest.raises(ClusterError, match="integrity"):
            load_plan(tmp_path)

    def test_tampered_task_file_rejected(self, tmp_path):
        write_plan(plan_shards(make_specs(3), shards=1), tmp_path)
        payload = json.loads(task_path(tmp_path, 0).read_text())
        payload["fingerprints"] = list(reversed(payload["fingerprints"]))
        task_path(tmp_path, 0).write_text(json.dumps(payload))
        with pytest.raises(ClusterError, match="integrity"):
            load_task(tmp_path, 0)

    def test_missing_manifest_names_the_planner(self, tmp_path):
        with pytest.raises(ClusterError, match="plan"):
            load_plan(tmp_path)


class TestEnsurePlan:
    def test_fresh_directory_gets_planned(self, tmp_path):
        specs = make_specs(4)
        plan = ensure_plan(specs, tmp_path, shards=2)
        assert manifest_path(tmp_path).exists()
        assert load_plan(tmp_path) == plan

    def test_same_batch_is_adopted(self, tmp_path):
        specs = make_specs(4)
        first = ensure_plan(specs, tmp_path, shards=2)
        again = ensure_plan(list(specs), tmp_path, shards=2)
        assert again == first

    def test_different_batch_refuses_to_mix_experiments(self, tmp_path):
        ensure_plan(make_specs(4), tmp_path, shards=2)
        with pytest.raises(ClusterError, match="refusing to mix"):
            ensure_plan(make_specs(5), tmp_path, shards=2)

    def test_different_shard_count_is_a_different_plan(self, tmp_path):
        specs = make_specs(4)
        ensure_plan(specs, tmp_path, shards=2)
        with pytest.raises(ClusterError, match="refusing to mix"):
            ensure_plan(specs, tmp_path, shards=3)
