"""Execute the library's docstring examples.

Several utility modules carry ``>>>`` examples in their docstrings;
this test runs them all so the documentation can never drift from the
implementation.
"""

import doctest

import pytest

import repro.analysis.tables
import repro.coloring.palette
import repro.graphs.edges
import repro.graphs.line_graph
import repro.utils.gf
import repro.utils.harmonic
import repro.utils.logstar
import repro.utils.primes


MODULES = [
    repro.analysis.tables,
    repro.coloring.palette,
    repro.graphs.edges,
    repro.graphs.line_graph,
    repro.utils.gf,
    repro.utils.harmonic,
    repro.utils.logstar,
    repro.utils.primes,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_doctests(module):
    failures, attempted = doctest.testmod(
        module, verbose=False, report=True
    )[0], None
    assert failures == 0, f"doctest failures in {module.__name__}"


def test_doctests_actually_cover_examples():
    """At least some modules must contain runnable examples (guards
    against silently losing them all in a refactor)."""
    total = sum(
        doctest.DocTestFinder().find(module) != [] for module in MODULES
    )
    assert total >= 5
