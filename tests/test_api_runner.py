"""Tests for the batch executor: run, run_many, caching, determinism."""

import pytest

from repro.api import (
    InstanceSpec,
    RunSpec,
    clear_result_cache,
    result_cache_size,
    run,
    run_many,
    specs_for_race,
)
from repro.api.registry import algorithm_names
from repro.baselines.registry import BaselineResult, run_baseline
from repro.core.solver import SolveResult, solve_edge_coloring
from repro.results import RunResult


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_result_cache()
    yield
    clear_result_cache()


def twelve_spec_sweep() -> list[RunSpec]:
    """A 12-cell sweep mixing families, sizes, and algorithms."""
    instances = [
        InstanceSpec(family="cycle", size=8, seed=1),
        InstanceSpec(family="complete_bipartite", size=3, seed=2),
        InstanceSpec(family="star", size=6, seed=3),
        InstanceSpec(family="grid", size=3, seed=4),
    ]
    algorithms = ["bko20", "linial_greedy", "randomized_luby"]
    return [
        RunSpec(instance=instance, algorithm=algorithm)
        for instance in instances
        for algorithm in algorithms
    ]


class TestRun:
    def test_paper_run_matches_direct_solver_call(self):
        spec = RunSpec(InstanceSpec(family="complete_bipartite", size=4, seed=2))
        result = run(spec)
        direct = solve_edge_coloring(spec.instance.build(), seed=2)
        assert result.rounds == direct.rounds
        assert result.coloring == direct.coloring
        assert result.fingerprint == spec.fingerprint()

    def test_baseline_run_matches_direct_baseline_call(self):
        spec = RunSpec(
            InstanceSpec(family="complete_bipartite", size=4, seed=2),
            algorithm="kuhn_wattenhofer",
        )
        result = run(spec)
        direct = run_baseline(
            "kuhn_wattenhofer", spec.instance.build(), seed=2
        )
        assert result.rounds == direct.rounds
        assert result.coloring == direct.coloring

    def test_cache_serves_repeat_runs(self):
        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        first = run(spec)
        assert result_cache_size() == 1
        again = run(spec)
        assert result_cache_size() == 1  # served from cache, not re-solved
        assert again.result_fingerprint() == first.result_fingerprint()

    def test_cached_results_are_mutation_safe(self):
        # Cache entries are private copies: a caller trashing its
        # returned result must not poison later lookups.
        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        first = run(spec)
        pristine = first.result_fingerprint()
        first.coloring.clear()
        first.stats["injected"] = True
        assert run(spec).result_fingerprint() == pristine

    def test_validate_true_upgrades_unvalidated_cache_entries(self, monkeypatch):
        # A validate=False run populates the cache; the next
        # validate=True request must actually validate (once) before
        # the entry may satisfy it.
        import repro.api.runner as runner_module

        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        unvalidated = run(spec, validate=False)
        calls: list[object] = []
        monkeypatch.setattr(
            runner_module, "_validate", lambda result, graph: calls.append(result)
        )
        validated = run(spec, validate=True)
        assert validated.result_fingerprint() == unvalidated.result_fingerprint()
        assert len(calls) == 1
        run(spec, validate=True)
        assert len(calls) == 1  # upgraded once, not re-checked per hit

    def test_cache_opt_out(self):
        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        run(spec, cache=False)
        assert result_cache_size() == 0


class TestRunMany:
    def test_results_come_back_in_spec_order(self):
        specs = twelve_spec_sweep()
        results = run_many(specs)
        assert [r.fingerprint for r in results] == [s.fingerprint() for s in specs]

    def test_duplicate_specs_solve_once(self):
        spec = RunSpec(InstanceSpec(family="cycle", size=8, seed=1))
        results = run_many([spec, spec, spec])
        assert result_cache_size() == 1
        fingerprints = {r.result_fingerprint() for r in results}
        assert len(fingerprints) == 1
        # ... but callers get independent copies, not one shared object.
        results[0].coloring.clear()
        assert results[1].coloring

    def test_parallel_equals_serial_on_a_12_spec_sweep(self):
        # Acceptance criterion: byte-identical RunResult fingerprints
        # with parallel=1 and parallel=4.
        specs = twelve_spec_sweep()
        assert len(specs) == 12
        serial = run_many(specs, parallel=1)
        clear_result_cache()
        parallel = run_many(specs, parallel=4)
        assert [r.result_fingerprint() for r in serial] == [
            r.result_fingerprint() for r in parallel
        ]
        # The fingerprint covers rounds + coloring, but check the
        # headline fields directly too.
        for a, b in zip(serial, parallel):
            assert a.rounds == b.rounds
            assert a.coloring == b.coloring
            assert a.name == b.name

    def test_parallel_results_land_in_the_cache(self):
        specs = twelve_spec_sweep()
        run_many(specs, parallel=4)
        assert result_cache_size() == 12
        # A second pass is served entirely from cache.
        again = run_many(specs, parallel=4)
        assert [r.result_fingerprint() for r in again] == [
            r.result_fingerprint() for r in run_many(specs)
        ]

    def test_specs_for_race_covers_the_whole_registry(self):
        instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
        specs = specs_for_race(instance)
        assert [s.algorithm for s in specs] == algorithm_names()
        results = run_many(specs)
        assert all(r.rounds >= 0 and r.coloring for r in results)


class TestDeprecationShims:
    """The legacy result types remain importable and RunResult-shaped."""

    def test_solve_result_is_a_run_result(self):
        assert issubclass(SolveResult, RunResult)
        result = solve_edge_coloring(
            InstanceSpec(family="cycle", size=6, seed=1).build(), seed=1
        )
        assert isinstance(result, RunResult)
        assert result.name == "bko20"
        assert result.palette_size > 0

    def test_baseline_result_is_a_run_result(self):
        assert issubclass(BaselineResult, RunResult)
        result = run_baseline(
            "greedy_sequential",
            InstanceSpec(family="cycle", size=6, seed=1).build(),
            seed=1,
        )
        assert isinstance(result, RunResult)
        assert result.result_fingerprint()

    def test_legacy_imports_keep_working(self):
        from repro import SolveResult as top_level_solve_result
        from repro.baselines.registry import BaselineResult as legacy_baseline
        from repro.core.solver import SolveResult as legacy_solve

        assert top_level_solve_result is legacy_solve
        assert issubclass(legacy_baseline, RunResult)


class TestResultSerialization:
    def test_to_dict_is_json_safe_and_tokenized(self):
        import json

        result = run(RunSpec(InstanceSpec(family="cycle", size=5, seed=1)))
        payload = result.to_dict()
        text = json.dumps(payload, sort_keys=True, default=repr)
        assert "--" in next(iter(payload["coloring"]))
        assert json.loads(text)["rounds"] == result.rounds

    def test_result_fingerprint_stable_across_runs(self):
        spec = RunSpec(
            InstanceSpec(family="complete_bipartite", size=3, seed=2),
            algorithm="randomized_luby",
        )
        first = run(spec).result_fingerprint()
        clear_result_cache()
        assert run(spec).result_fingerprint() == first
