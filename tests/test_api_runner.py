"""Tests for the batch executor: run, run_many, caching, determinism,
the on-disk cache spill, and streaming run_many_iter."""

import json

import pytest

from repro.api import (
    InstanceSpec,
    RunSpec,
    clear_result_cache,
    result_cache_size,
    run,
    run_many,
    run_many_iter,
    specs_for_race,
)
from repro.api.registry import algorithm_names
from repro.baselines.registry import BaselineResult, run_baseline
from repro.core.solver import SolveResult, solve_edge_coloring
from repro.results import RunResult


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_result_cache()
    yield
    clear_result_cache()


def twelve_spec_sweep() -> list[RunSpec]:
    """A 12-cell sweep mixing families, sizes, and algorithms."""
    instances = [
        InstanceSpec(family="cycle", size=8, seed=1),
        InstanceSpec(family="complete_bipartite", size=3, seed=2),
        InstanceSpec(family="star", size=6, seed=3),
        InstanceSpec(family="grid", size=3, seed=4),
    ]
    algorithms = ["bko20", "linial_greedy", "randomized_luby"]
    return [
        RunSpec(instance=instance, algorithm=algorithm)
        for instance in instances
        for algorithm in algorithms
    ]


class TestRun:
    def test_paper_run_matches_direct_solver_call(self):
        spec = RunSpec(InstanceSpec(family="complete_bipartite", size=4, seed=2))
        result = run(spec)
        direct = solve_edge_coloring(spec.instance.build(), seed=2)
        assert result.rounds == direct.rounds
        assert result.coloring == direct.coloring
        assert result.fingerprint == spec.fingerprint()

    def test_baseline_run_matches_direct_baseline_call(self):
        spec = RunSpec(
            InstanceSpec(family="complete_bipartite", size=4, seed=2),
            algorithm="kuhn_wattenhofer",
        )
        result = run(spec)
        direct = run_baseline(
            "kuhn_wattenhofer", spec.instance.build(), seed=2
        )
        assert result.rounds == direct.rounds
        assert result.coloring == direct.coloring

    def test_cache_serves_repeat_runs(self):
        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        first = run(spec)
        assert result_cache_size() == 1
        again = run(spec)
        assert result_cache_size() == 1  # served from cache, not re-solved
        assert again.result_fingerprint() == first.result_fingerprint()

    def test_cached_results_are_mutation_safe(self):
        # Cache entries are private copies: a caller trashing its
        # returned result must not poison later lookups.
        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        first = run(spec)
        pristine = first.result_fingerprint()
        first.coloring.clear()
        first.stats["injected"] = True
        assert run(spec).result_fingerprint() == pristine

    def test_validate_true_upgrades_unvalidated_cache_entries(self, monkeypatch):
        # A validate=False run populates the cache; the next
        # validate=True request must actually validate (once) before
        # the entry may satisfy it.
        import repro.api.runner as runner_module

        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        unvalidated = run(spec, validate=False)
        calls: list[object] = []
        monkeypatch.setattr(
            runner_module, "_validate", lambda result, graph: calls.append(result)
        )
        validated = run(spec, validate=True)
        assert validated.result_fingerprint() == unvalidated.result_fingerprint()
        assert len(calls) == 1
        run(spec, validate=True)
        assert len(calls) == 1  # upgraded once, not re-checked per hit

    def test_cache_opt_out(self):
        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        run(spec, cache=False)
        assert result_cache_size() == 0


class TestRunMany:
    def test_results_come_back_in_spec_order(self):
        specs = twelve_spec_sweep()
        results = run_many(specs)
        assert [r.fingerprint for r in results] == [s.fingerprint() for s in specs]

    def test_duplicate_specs_solve_once(self):
        spec = RunSpec(InstanceSpec(family="cycle", size=8, seed=1))
        results = run_many([spec, spec, spec])
        assert result_cache_size() == 1
        fingerprints = {r.result_fingerprint() for r in results}
        assert len(fingerprints) == 1
        # ... but callers get independent copies, not one shared object.
        results[0].coloring.clear()
        assert results[1].coloring

    def test_parallel_equals_serial_on_a_12_spec_sweep(self):
        # Acceptance criterion: byte-identical RunResult fingerprints
        # with parallel=1 and parallel=4.
        specs = twelve_spec_sweep()
        assert len(specs) == 12
        serial = run_many(specs, parallel=1)
        clear_result_cache()
        parallel = run_many(specs, parallel=4)
        assert [r.result_fingerprint() for r in serial] == [
            r.result_fingerprint() for r in parallel
        ]
        # The fingerprint covers rounds + coloring, but check the
        # headline fields directly too.
        for a, b in zip(serial, parallel):
            assert a.rounds == b.rounds
            assert a.coloring == b.coloring
            assert a.name == b.name

    def test_parallel_results_land_in_the_cache(self):
        specs = twelve_spec_sweep()
        run_many(specs, parallel=4)
        assert result_cache_size() == 12
        # A second pass is served entirely from cache.
        again = run_many(specs, parallel=4)
        assert [r.result_fingerprint() for r in again] == [
            r.result_fingerprint() for r in run_many(specs)
        ]

    def test_specs_for_race_covers_the_whole_registry(self):
        instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
        specs = specs_for_race(instance)
        assert [s.algorithm for s in specs] == algorithm_names()
        results = run_many(specs)
        assert all(r.rounds >= 0 and r.coloring for r in results)


class TestDiskCache:
    """The cache_dir= spill: sweeps resume across sessions."""

    def test_run_writes_one_json_per_fingerprint(self, tmp_path):
        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        result = run(spec, cache_dir=tmp_path)
        path = tmp_path / f"{spec.fingerprint()}.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["fingerprint"] == spec.fingerprint()
        assert payload["validated"] is True
        assert payload["result"]["rounds"] == result.rounds

    def test_disk_hit_survives_cleared_memory_cache(self, tmp_path, monkeypatch):
        spec = RunSpec(InstanceSpec(family="complete_bipartite", size=3, seed=2))
        first = run(spec, cache_dir=tmp_path)
        pristine = first.result_fingerprint()
        clear_result_cache()  # "new session"

        import repro.api.runner as runner_module

        monkeypatch.setattr(
            runner_module,
            "get_algorithm",
            lambda name: pytest.fail("disk hit should not re-solve"),
        )
        resumed = run(spec, cache_dir=tmp_path)
        assert resumed.result_fingerprint() == pristine
        assert resumed.rounds == first.rounds
        assert resumed.coloring == first.coloring

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        first = run(spec, cache_dir=tmp_path)
        path = tmp_path / f"{spec.fingerprint()}.json"
        payload = json.loads(path.read_text())
        payload["result"]["rounds"] = 999  # tampered: seal must break
        path.write_text(json.dumps(payload))
        clear_result_cache()
        again = run(spec, cache_dir=tmp_path)
        assert again.rounds == first.rounds  # re-solved, not trusted

    def test_unvalidated_disk_entry_upgrades_on_validate(self, tmp_path):
        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        run(spec, validate=False, cache=False, cache_dir=tmp_path)
        path = tmp_path / f"{spec.fingerprint()}.json"
        assert json.loads(path.read_text())["validated"] is False
        run(spec, validate=True, cache=False, cache_dir=tmp_path)
        assert json.loads(path.read_text())["validated"] is True

    def test_memory_hit_still_spills_to_disk(self, tmp_path):
        spec = RunSpec(InstanceSpec(family="cycle", size=9, seed=1))
        run(spec)  # warm the in-process cache only
        run(spec, cache_dir=tmp_path)  # memory hit — must still spill
        assert (tmp_path / f"{spec.fingerprint()}.json").exists()

    def test_run_many_resumes_from_disk(self, tmp_path):
        specs = twelve_spec_sweep()
        first = run_many(specs, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 12
        clear_result_cache()
        resumed = run_many(specs, cache_dir=tmp_path)
        assert [r.result_fingerprint() for r in resumed] == [
            r.result_fingerprint() for r in first
        ]


class TestRunManyIter:
    """Streaming delivery: same results, surfaced as they finish."""

    def test_serial_stream_matches_run_many(self):
        specs = twelve_spec_sweep()
        streamed = dict(run_many_iter(specs))
        clear_result_cache()
        listed = run_many(specs)
        assert sorted(streamed) == list(range(12))
        assert [streamed[i].result_fingerprint() for i in range(12)] == [
            r.result_fingerprint() for r in listed
        ]

    def test_parallel_stream_matches_serial(self):
        specs = twelve_spec_sweep()
        serial = run_many(specs, parallel=1)
        clear_result_cache()
        streamed = dict(run_many_iter(specs, parallel=4))
        assert sorted(streamed) == list(range(12))
        assert [streamed[i].result_fingerprint() for i in range(12)] == [
            r.result_fingerprint() for r in serial
        ]

    def test_cache_hits_stream_before_fresh_runs(self):
        specs = twelve_spec_sweep()
        run(specs[5])  # pre-cache one spec
        order = [index for index, _ in run_many_iter(specs)]
        assert order[0] == 5  # the hit surfaces first
        assert sorted(order) == list(range(12))

    def test_duplicate_specs_yield_independent_copies(self):
        spec = RunSpec(InstanceSpec(family="cycle", size=8, seed=1))
        pairs = dict(run_many_iter([spec, spec]))
        assert pairs[0] is not pairs[1]
        pairs[0].coloring.clear()
        assert pairs[1].coloring


class TestDeprecationShims:
    """The legacy result types remain importable and RunResult-shaped."""

    def test_solve_result_is_a_run_result(self):
        assert issubclass(SolveResult, RunResult)
        result = solve_edge_coloring(
            InstanceSpec(family="cycle", size=6, seed=1).build(), seed=1
        )
        assert isinstance(result, RunResult)
        assert result.name == "bko20"
        assert result.palette_size > 0

    def test_baseline_result_is_a_run_result(self):
        assert issubclass(BaselineResult, RunResult)
        result = run_baseline(
            "greedy_sequential",
            InstanceSpec(family="cycle", size=6, seed=1).build(),
            seed=1,
        )
        assert isinstance(result, RunResult)
        assert result.result_fingerprint()

    def test_legacy_imports_keep_working(self):
        from repro import SolveResult as top_level_solve_result
        from repro.baselines.registry import BaselineResult as legacy_baseline
        from repro.core.solver import SolveResult as legacy_solve

        assert top_level_solve_result is legacy_solve
        assert issubclass(legacy_baseline, RunResult)


class TestResultSerialization:
    def test_to_dict_is_json_safe_and_tokenized(self):
        import json

        result = run(RunSpec(InstanceSpec(family="cycle", size=5, seed=1)))
        payload = result.to_dict()
        text = json.dumps(payload, sort_keys=True, default=repr)
        assert "--" in next(iter(payload["coloring"]))
        assert json.loads(text)["rounds"] == result.rounds

    def test_result_fingerprint_stable_across_runs(self):
        spec = RunSpec(
            InstanceSpec(family="complete_bipartite", size=3, seed=2),
            algorithm="randomized_luby",
        )
        first = run(spec).result_fingerprint()
        clear_result_cache()
        assert run(spec).result_fingerprint() == first


class TestCacheEviction:
    """The on-disk store's LRU-by-mtime eviction policy."""

    def specs(self, count=5):
        return [
            RunSpec(
                InstanceSpec(family="cycle", size=5 + index, seed=1),
                algorithm="greedy_sequential",
            )
            for index in range(count)
        ]

    def entries(self, cache_dir):
        return sorted(path.name for path in cache_dir.glob("*.json"))

    def test_prune_keeps_the_most_recent_entries(self, tmp_path):
        import os

        from repro.api import prune_cache

        specs = self.specs()
        run_many(specs, cache=False, cache_dir=tmp_path)
        assert len(self.entries(tmp_path)) == 5
        # Make use-order unambiguous regardless of filesystem mtime
        # granularity, oldest first.
        for index, spec in enumerate(specs):
            path = tmp_path / f"{spec.fingerprint()}.json"
            os.utime(path, ns=(10**9 * index, 10**9 * index))
        removed = prune_cache(tmp_path, 2)
        assert removed == 3
        survivors = self.entries(tmp_path)
        assert survivors == sorted(
            f"{spec.fingerprint()}.json" for spec in specs[-2:]
        )

    def test_prune_budget_larger_than_store_is_a_no_op(self, tmp_path):
        from repro.api import prune_cache

        run_many(self.specs(3), cache=False, cache_dir=tmp_path)
        assert prune_cache(tmp_path, 10) == 0
        assert len(self.entries(tmp_path)) == 3

    def test_prune_zero_empties_the_store(self, tmp_path):
        from repro.api import prune_cache

        run_many(self.specs(3), cache=False, cache_dir=tmp_path)
        assert prune_cache(tmp_path, 0) == 3
        assert self.entries(tmp_path) == []

    def test_prune_missing_directory_is_a_no_op(self, tmp_path):
        from repro.api import prune_cache

        assert prune_cache(tmp_path / "absent", 3) == 0

    def test_prune_negative_budget_raises(self, tmp_path):
        from repro.api import prune_cache

        with pytest.raises(ValueError):
            prune_cache(tmp_path, -1)

    def test_cache_max_entries_bounds_run_many(self, tmp_path):
        results = run_many(
            self.specs(5), cache=False, cache_dir=tmp_path, cache_max_entries=2
        )
        assert len(results) == 5
        assert len(self.entries(tmp_path)) == 2

    def test_cache_max_entries_bounds_single_runs(self, tmp_path):
        for spec in self.specs(4):
            run(spec, cache=False, cache_dir=tmp_path, cache_max_entries=3)
        assert len(self.entries(tmp_path)) == 3

    def test_hits_refresh_recency(self, tmp_path):
        import os

        from repro.api import prune_cache

        specs = self.specs(3)
        run_many(specs, cache=False, cache_dir=tmp_path)
        for index, spec in enumerate(specs):
            path = tmp_path / f"{spec.fingerprint()}.json"
            os.utime(path, ns=(10**9 * index, 10**9 * index))
        # Touch the *oldest* entry via a cache hit; it must now outrank
        # the untouched middle entry.
        oldest = specs[0]
        hit = run(oldest, cache=False, cache_dir=tmp_path)
        assert hit.result_fingerprint()
        prune_cache(tmp_path, 2)
        survivors = self.entries(tmp_path)
        assert f"{oldest.fingerprint()}.json" in survivors
        assert f"{specs[1].fingerprint()}.json" not in survivors

    def test_pruned_specs_simply_rerun(self, tmp_path):
        from repro.api import prune_cache

        specs = self.specs(3)
        first = run_many(specs, cache=False, cache_dir=tmp_path)
        prune_cache(tmp_path, 0)
        second = run_many(specs, cache=False, cache_dir=tmp_path)
        assert [r.result_fingerprint() for r in first] == [
            r.result_fingerprint() for r in second
        ]

    def test_cache_max_entries_holds_when_streaming_stops_early(self, tmp_path):
        # A consumer that breaks out of run_many_iter closes the
        # generator; the cap must be enforced anyway.
        iterator = run_many_iter(
            self.specs(4), cache=False, cache_dir=tmp_path, cache_max_entries=1
        )
        next(iterator)
        iterator.close()
        assert len(self.entries(tmp_path)) <= 1
