"""Tests for the independent validators."""

import networkx as nx
import pytest

from repro.errors import ColoringValidationError
from repro.coloring.lists import uniform_lists
from repro.coloring.palette import Palette
from repro.coloring.verify import (
    ColoringReport,
    check_defective_coloring,
    check_list_edge_coloring,
    check_palette_bound,
    check_proper_edge_coloring,
    measure_defects,
)


class TestProperEdgeColoring:
    def test_accepts_valid(self):
        g = nx.cycle_graph(4)
        check_proper_edge_coloring(
            g, {(0, 1): 1, (1, 2): 2, (2, 3): 1, (0, 3): 2}
        )

    def test_rejects_conflict(self):
        g = nx.path_graph(3)
        with pytest.raises(ColoringValidationError):
            check_proper_edge_coloring(g, {(0, 1): 1, (1, 2): 1})

    def test_rejects_missing_edge_when_total(self):
        g = nx.path_graph(3)
        with pytest.raises(ColoringValidationError):
            check_proper_edge_coloring(g, {(0, 1): 1})

    def test_partial_mode_allows_missing(self):
        g = nx.path_graph(3)
        check_proper_edge_coloring(g, {(0, 1): 1}, require_total=False)

    def test_rejects_phantom_edge(self):
        g = nx.path_graph(3)
        with pytest.raises(ColoringValidationError):
            check_proper_edge_coloring(
                g, {(0, 1): 1, (1, 2): 2, (0, 2): 3}
            )


class TestListEdgeColoring:
    def test_rejects_color_outside_list(self):
        g = nx.path_graph(3)
        lists = uniform_lists(g, Palette.of_size(3))
        with pytest.raises(ColoringValidationError):
            check_list_edge_coloring(g, lists, {(0, 1): 9, (1, 2): 2})

    def test_accepts_valid(self):
        g = nx.path_graph(3)
        lists = uniform_lists(g, Palette.of_size(3))
        check_list_edge_coloring(g, lists, {(0, 1): 1, (1, 2): 2})


class TestPaletteBound:
    def test_accepts_in_range(self):
        check_palette_bound({(0, 1): 3}, 5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ColoringValidationError):
            check_palette_bound({(0, 1): 6}, 5)
        with pytest.raises(ColoringValidationError):
            check_palette_bound({(0, 1): 0}, 5)


class TestDefects:
    def test_measure_defects_monochromatic_star(self):
        g = nx.star_graph(3)
        assignment = {(0, 1): 1, (0, 2): 1, (0, 3): 1}
        defects = measure_defects(g, assignment)
        assert all(d == 2 for d in defects.values())

    def test_proper_coloring_has_zero_defect(self):
        g = nx.cycle_graph(4)
        assignment = {(0, 1): 1, (1, 2): 2, (2, 3): 1, (0, 3): 2}
        assert all(d == 0 for d in measure_defects(g, assignment).values())

    def test_check_defective_respects_bound(self):
        g = nx.star_graph(3)
        assignment = {(0, 1): 1, (0, 2): 1, (0, 3): 1}
        check_defective_coloring(g, assignment, lambda deg: deg)  # defect <= deg

    def test_check_defective_rejects_violation(self):
        g = nx.star_graph(3)
        assignment = {(0, 1): 1, (0, 2): 1, (0, 3): 1}
        with pytest.raises(ColoringValidationError):
            check_defective_coloring(g, assignment, lambda deg: 0)

    def test_check_defective_rejects_missing_edges(self):
        g = nx.path_graph(3)
        with pytest.raises(ColoringValidationError):
            check_defective_coloring(g, {(0, 1): 1}, lambda deg: deg)

    def test_color_bound_enforced(self):
        g = nx.path_graph(4)
        assignment = {(0, 1): 1, (1, 2): 2, (2, 3): 3}
        with pytest.raises(ColoringValidationError):
            check_defective_coloring(
                g, assignment, lambda deg: deg, color_bound=2
            )


class TestColoringReport:
    def test_empty(self):
        report = ColoringReport.from_coloring({})
        assert report.edges == 0 and report.colors_used == 0

    def test_counts(self):
        report = ColoringReport.from_coloring({(0, 1): 5, (2, 3): 5, (4, 5): 2})
        assert report.edges == 3
        assert report.colors_used == 2
        assert report.max_color == 5
