"""Tests for the baseline algorithms — every one must produce a valid
(2Δ-1)-edge coloring, and their round counts must sit in the right
complexity regime relative to each other."""

import networkx as nx
import pytest

from repro.baselines import (
    all_baselines,
    greedy_sequential_coloring,
    kuhn_soda20_coloring,
    kuhn_wattenhofer_coloring,
    linial_greedy_coloring,
    randomized_luby_coloring,
    run_baseline,
)
from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    random_regular,
    star_graph,
)
from repro.graphs.properties import max_degree
from repro.utils.logstar import log_star


ALL_NAMES = sorted(all_baselines())


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize(
    "make_graph",
    [
        lambda: cycle_graph(12),
        lambda: star_graph(7),
        lambda: complete_bipartite(5, 5),
        lambda: random_regular(6, 18, seed=4),
    ],
)
def test_every_baseline_is_valid(name, make_graph):
    graph = make_graph()
    result = run_baseline(name, graph, seed=3)
    check_proper_edge_coloring(graph, result.coloring)
    check_palette_bound(result.coloring, result.palette_size)
    assert result.palette_size == max(1, 2 * max_degree(graph) - 1)
    assert result.rounds >= 0


class TestRegistry:
    def test_contains_expected_names(self):
        assert set(ALL_NAMES) == {
            "greedy_sequential",
            "kuhn_soda20",
            "kuhn_wattenhofer",
            "linial_greedy",
            "panconesi_rizzi",
            "randomized_luby",
        }

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_baseline("nope", cycle_graph(4))


class TestComplexityRegimes:
    def test_linial_greedy_rounds_near_class_palette(self):
        g = random_regular(8, 24, seed=2)
        result = linial_greedy_coloring(g, seed=1)
        assert result.rounds == (
            result.details["linial_rounds"] + result.details["class_palette"]
        )

    def test_kw_beats_linial_greedy_at_moderate_degree(self):
        """O(Δ̄ log Δ̄) < O(Δ̄²): KW must use far fewer rounds once the
        class palette is large."""
        g = random_regular(10, 40, seed=6)
        lin = linial_greedy_coloring(g, seed=1)
        kw = kuhn_wattenhofer_coloring(g, seed=1)
        assert kw.rounds < lin.rounds

    def test_randomized_is_logarithmic_scale(self):
        g = random_regular(6, 60, seed=8)
        result = randomized_luby_coloring(g, seed=5)
        # O(log n) w.h.p.; generous constant for one sample
        assert result.rounds <= 20 * max(1, log_star(60)) + 30

    def test_greedy_sequential_rounds_equal_edges(self):
        g = complete_bipartite(4, 4)
        result = greedy_sequential_coloring(g)
        assert result.rounds == 16

    def test_kuhn_soda20_reports_policy(self):
        g = random_regular(6, 16, seed=3)
        result = kuhn_soda20_coloring(g, seed=2)
        assert "kuhn20" in result.details["policy"]


class TestRandomizedBehaviour:
    def test_deterministic_given_seed(self):
        g = random_regular(4, 14, seed=2)
        a = randomized_luby_coloring(g, seed=9)
        b = randomized_luby_coloring(g, seed=9)
        assert a.coloring == b.coloring and a.rounds == b.rounds

    def test_different_seeds_vary(self):
        g = random_regular(4, 20, seed=2)
        colorings = {
            tuple(sorted(randomized_luby_coloring(g, seed=s).coloring.items()))
            for s in range(4)
        }
        assert len(colorings) > 1
