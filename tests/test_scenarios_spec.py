"""Tests for ScenarioSpec and its composition into RunSpec.

Covers the fingerprint contract (identity scenarios vanish; adversarial
scenarios normalise their parameters), serialization round-trips, and
the strict unknown-field policy of every spec deserializer.
"""

import pytest

from repro.api import InstanceSpec, RunSpec, ScenarioSpec
from repro.errors import ReproError, ScenarioError, SpecFormatError
from repro.scenarios import get_model, model_names, scenario_registry


def instance() -> InstanceSpec:
    return InstanceSpec(family="cycle", size=8, seed=1)


class TestScenarioSpec:
    def test_default_is_identity(self):
        spec = ScenarioSpec()
        assert spec.model == "synchronous"
        assert spec.is_identity()

    def test_adversarial_models_are_not_identity(self):
        for name in ("bounded_async", "crash_stop", "lossy_links"):
            assert not ScenarioSpec(model=name).is_identity()

    def test_unknown_model_raises(self):
        with pytest.raises(ScenarioError, match="unknown execution model"):
            ScenarioSpec(model="byzantine")

    def test_unknown_param_raises_eagerly(self):
        with pytest.raises(ScenarioError, match="does not take parameters"):
            ScenarioSpec(model="lossy_links", params={"dorp": 0.1})

    def test_identity_model_takes_no_params(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(model="synchronous", params={"quota": 1})

    @pytest.mark.parametrize(
        "model,params",
        [
            ("bounded_async", {"quota": 0}),
            ("bounded_async", {"quota": 1.5}),
            ("bounded_async", {"jitter": -1}),
            ("crash_stop", {"f": -1}),
            ("crash_stop", {"horizon": 0}),
            ("lossy_links", {"drop": 1.0}),
            ("lossy_links", {"drop": -0.1}),
            ("lossy_links", {"duplicate": "lots"}),
        ],
    )
    def test_out_of_range_params_raise(self, model, params):
        with pytest.raises(ScenarioError):
            ScenarioSpec(model=model, params=params)

    def test_normalized_params_fill_defaults(self):
        spec = ScenarioSpec(model="lossy_links")
        assert spec.normalized_params() == {"drop": 0.1, "duplicate": 0.0}

    def test_params_hashable_and_order_independent(self):
        a = ScenarioSpec(model="crash_stop", params={"f": 2, "horizon": 4})
        b = ScenarioSpec(model="crash_stop", params={"horizon": 4, "f": 2})
        assert a == b
        assert hash(a) == hash(b)

    def test_json_round_trip(self):
        spec = ScenarioSpec(model="bounded_async", seed=9, params={"quota": 3})
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_from_dict_unknown_key_raises_repro_error(self):
        with pytest.raises(SpecFormatError, match="unknown fields"):
            ScenarioSpec.from_dict({"model": "lossy_links", "mode": "hard"})
        # SpecFormatError is a ReproError — one catchable base class.
        assert issubclass(SpecFormatError, ReproError)

    def test_label_mentions_model_and_seed(self):
        label = ScenarioSpec(model="crash_stop", seed=7, params={"f": 2}).label()
        assert "crash_stop" in label and "f=2" in label and "s7" in label
        assert ScenarioSpec().label() == "synchronous"

    def test_registry_lists_all_models(self):
        assert model_names() == [
            "synchronous", "bounded_async", "crash_stop", "lossy_links",
        ]
        assert set(scenario_registry()) == set(model_names())
        assert get_model("synchronous").identity


class TestRunSpecScenarioComposition:
    def test_identity_scenario_shares_fingerprint_with_plain_spec(self):
        plain = RunSpec(instance=instance(), algorithm="greedy_sequential")
        sync = plain.with_scenario(ScenarioSpec(model="synchronous"))
        assert sync.fingerprint() == plain.fingerprint()

    def test_adversarial_scenario_changes_fingerprint(self):
        plain = RunSpec(instance=instance(), algorithm="greedy_sequential")
        lossy = plain.with_scenario(ScenarioSpec(model="lossy_links", seed=1))
        assert lossy.fingerprint() != plain.fingerprint()

    def test_default_params_and_explicit_defaults_share_fingerprint(self):
        base = RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="lossy_links", seed=1),
        )
        spelled = base.with_scenario(
            ScenarioSpec(
                model="lossy_links", seed=1,
                params={"drop": 0.1, "duplicate": 0.0},
            )
        )
        assert spelled.fingerprint() == base.fingerprint()

    def test_seed_and_params_split_fingerprints(self):
        fingerprints = {
            RunSpec(
                instance=instance(),
                algorithm="greedy_sequential",
                scenario=scenario,
            ).fingerprint()
            for scenario in (
                ScenarioSpec(model="lossy_links", seed=1),
                ScenarioSpec(model="lossy_links", seed=2),
                ScenarioSpec(model="lossy_links", seed=1, params={"drop": 0.2}),
                ScenarioSpec(model="crash_stop", seed=1),
            )
        }
        assert len(fingerprints) == 4

    def test_dict_round_trip_with_scenario(self):
        spec = RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="crash_stop", seed=3, params={"f": 2}),
        )
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_scenario_mapping_is_parsed(self):
        spec = RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            scenario={"model": "lossy_links", "seed": 2},
        )
        assert isinstance(spec.scenario, ScenarioSpec)
        assert spec.scenario.model == "lossy_links"

    def test_old_format_dict_still_loads(self):
        # Pre-scenario cached JSON has no 'scenario' key — must load.
        payload = {
            "instance": {"family": "cycle", "size": 8, "seed": 1},
            "algorithm": "greedy_sequential",
        }
        spec = RunSpec.from_dict(payload)
        assert spec.scenario is None

    def test_run_spec_unknown_key_raises(self):
        payload = {
            "instance": {"family": "cycle", "size": 8, "seed": 1},
            "algorithm": "greedy_sequential",
            "scenerio": {"model": "lossy_links"},  # typo'd field
        }
        with pytest.raises(SpecFormatError, match="scenerio"):
            RunSpec.from_dict(payload)

    def test_instance_spec_unknown_key_raises(self):
        with pytest.raises(SpecFormatError, match="sized"):
            InstanceSpec.from_dict({"family": "cycle", "sized": 8})

    def test_label_mentions_scenario(self):
        spec = RunSpec(
            instance=instance(),
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="lossy_links", seed=5),
        )
        assert "lossy_links" in spec.label()
        sync = spec.with_scenario(ScenarioSpec())
        assert "synchronous" not in sync.label()
