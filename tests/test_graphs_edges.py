"""Tests for canonical edge handling."""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidInstanceError
from repro.graphs.edges import (
    edge_key,
    edge_set,
    edges_subgraph,
    incident_edges,
    other_endpoint,
)


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidInstanceError):
            edge_key(3, 3)

    def test_heterogeneous_labels(self):
        # virtual nodes are tuples; ordering must still be total
        a = ("virt", 1, 0)
        b = ("virt", 2, 0)
        assert edge_key(a, b) == edge_key(b, a)

    @given(st.integers(), st.integers())
    def test_symmetric(self, u, v):
        if u == v:
            return
        assert edge_key(u, v) == edge_key(v, u)


class TestEdgeSet:
    def test_canonical_and_sorted(self):
        g = nx.Graph([(3, 1), (2, 3), (1, 2)])
        assert edge_set(g) == [(1, 2), (1, 3), (2, 3)]

    def test_empty_graph(self):
        assert edge_set(nx.Graph()) == []


class TestIncidentEdges:
    def test_star_center(self):
        g = nx.star_graph(3)
        assert incident_edges(g, 0) == [(0, 1), (0, 2), (0, 3)]

    def test_leaf(self):
        g = nx.star_graph(3)
        assert incident_edges(g, 2) == [(0, 2)]


class TestOtherEndpoint:
    def test_both_directions(self):
        assert other_endpoint((2, 5), 2) == 5
        assert other_endpoint((2, 5), 5) == 2

    def test_rejects_non_endpoint(self):
        with pytest.raises(InvalidInstanceError):
            other_endpoint((2, 5), 7)


class TestEdgesSubgraph:
    def test_keeps_only_requested_edges(self):
        g = nx.cycle_graph(5)
        sub = edges_subgraph(g, [(0, 1), (2, 3)])
        assert sorted(sub.edges()) == [(0, 1), (2, 3)]
        assert sub.number_of_nodes() == 4  # isolated nodes dropped

    def test_rejects_foreign_edge(self):
        g = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            edges_subgraph(g, [(0, 2)])
