"""``repro top``: folding the event stream into a deterministic frame.

The dashboard is pure folding + rendering over two read-only sources
(the cluster's ``job_status`` snapshot and the job event stream), so
everything here is deterministic: synthetic snapshots with an injected
clock pin the frame contents, and a real drained job pins the loop
(``run_top``) end to end — including the CLI surfaces ``repro top``
and ``repro shard status --watch``.
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.api import InstanceSpec, RunSpec
from repro.api.runner import clear_result_cache
from repro.cluster import run_sharded
from repro.cluster.coordinator import job_status
from repro.telemetry.top import (
    RECENT_EVENTS,
    fold_events,
    new_event_state,
    render_job_view,
    run_top,
    shard_progress_table,
)


def batch() -> list[RunSpec]:
    instance = InstanceSpec(family="complete_bipartite", size=3, seed=3)
    return [
        RunSpec(instance=instance, algorithm="bko20"),
        RunSpec(instance=instance, algorithm="greedy_sequential"),
    ]


def synthetic_status() -> dict:
    """A mid-flight two-shard job as ``job_status`` would report it."""
    return {
        "plan_fingerprint": "f" * 64,
        "shards": 2,
        "done": [0],
        "running": [1],
        "stale": [],
        "pending": [],
        "complete": False,
        "distinct_specs": 8,
        "specs_done": 4,
        "failed": {},
        "timing": {
            "0": {
                "wall_clock_s": 2.0,
                "specs_per_s": 2.0,
                "specs_executed": 4,
                "worker": "hosta:11",
            },
            "1": {"elapsed_s": 1.0, "worker": "hostb:22"},
        },
        "ledger": {
            "0": {"attempts": 5, "retries": 1, "cache_hits": 0},
        },
    }


class TestFoldEvents:
    def test_counts_heartbeats_and_recent_tail(self):
        state = new_event_state()
        events = [
            {"event": "shard_claimed", "shard": 1},
            {"event": "shard_heartbeat", "shard": 1, "done": 1, "total": 4},
            {"event": "shard_heartbeat", "shard": 1, "done": 2, "total": 4},
            {"event": "spec_retry", "attempt": 2},
        ]
        fold_events(state, events)
        assert state["by_type"] == {
            "shard_claimed": 1,
            "shard_heartbeat": 2,
            "spec_retry": 1,
        }
        # The latest heartbeat wins.
        assert state["heartbeats"] == {1: {"done": 2, "total": 4}}
        assert state["recent"] == events

    def test_recent_tail_is_bounded(self):
        state = new_event_state()
        for seq in range(RECENT_EVENTS * 3):
            fold_events(state, [{"event": "shard_heartbeat", "seq": seq}])
        assert len(state["recent"]) == RECENT_EVENTS
        assert state["recent"][-1]["seq"] == RECENT_EVENTS * 3 - 1


class TestRenderJobView:
    def test_mid_flight_frame_shows_progress_and_eta(self):
        state = fold_events(
            new_event_state(),
            [
                {
                    "event": "shard_heartbeat",
                    "shard": 1,
                    "done": 2,
                    "total": 4,
                    "unix_ts": 95.0,
                    "worker": "hostb:22",
                },
                {"event": "spec_retry", "attempt": 2, "unix_ts": 96.0},
            ],
        )
        frame = render_job_view(
            synthetic_status(), state, title="repro top — job", clock=lambda: 100.0
        )
        assert frame.startswith("repro top — job")
        assert "1/2 shards done" in frame
        assert "(4/8 distinct specs)" in frame
        assert "shard-0000" in frame and "shard-0001" in frame
        # Ledger retries and stream retries agree on max.
        assert "retries: 1" in frame
        assert "hosta:11: 4 specs @ 2.0/s" in frame
        # 4 sealed + 2 heartbeat = 6 of 8 done over 3.0s observed:
        # 2 remaining / 2 specs-per-s = 1 second.
        assert "eta: ~1.0s at observed throughput" in frame
        assert "recent events:" in frame
        assert "shard_heartbeat" in frame
        assert "   5.0s ago" in frame  # 100 - 95, right-aligned

    def test_complete_job_says_so_instead_of_eta(self):
        status = synthetic_status()
        status.update(
            complete=True,
            done=[0, 1],
            running=[],
            specs_done=8,
        )
        frame = render_job_view(status, new_event_state(), clock=lambda: 0.0)
        assert "job complete" in frame
        assert "eta:" not in frame

    def test_no_signal_means_no_eta(self):
        status = synthetic_status()
        status["timing"] = {}
        frame = render_job_view(status, new_event_state(), clock=lambda: 0.0)
        assert "eta:" not in frame

    def test_empty_job_dir_renders_a_placeholder(self):
        frame = render_job_view(
            {"shards": None}, new_event_state(), clock=lambda: 0.0
        )
        assert "no cluster plan yet" in frame

    def test_service_snapshot_adds_the_job_line(self):
        frame = render_job_view(
            synthetic_status(),
            new_event_state(),
            job={"job": "a" * 64, "state": "running", "done": 3, "total": 8},
            clock=lambda: 0.0,
        )
        assert f"job {'a' * 12}… state=running slots 3/8" in frame


class TestShardProgressTable:
    def test_real_job_rows_join_timing_and_ledger(self, tmp_path):
        clear_result_cache()
        job_dir = tmp_path / "job"
        run_sharded(batch(), job_dir, shards=2, local_workers=0)
        table = shard_progress_table(job_status(job_dir))
        assert "shard-0000" in table and "shard-0001" in table
        assert "done" in table
        assert "attempts" in table and "cache-hits" in table

    def test_missing_sidecars_render_dashes(self):
        table = shard_progress_table(
            {
                "shards": 1,
                "done": [],
                "running": [],
                "stale": [],
                "pending": [0],
                "timing": {},
                "ledger": {},
            }
        )
        row = table.splitlines()[-1]
        assert "shard-0000" in row and "pending" in row
        assert row.count("-") >= 6


class TestRunTop:
    def test_one_shot_frame_over_a_finished_job(self, tmp_path, capsys):
        clear_result_cache()
        job_dir = tmp_path / "job"
        run_sharded(batch(), job_dir, shards=2, local_workers=0)
        frames: list[str] = []
        assert (
            run_top(str(job_dir), once=True, emit=frames.append, clock=lambda: 0.0)
            == 0
        )
        assert len(frames) == 1
        assert "job complete" in frames[0]
        assert "shard-0000" in frames[0]
        # No screen-clear prefix on a one-shot render.
        assert not frames[0].startswith("\x1b")

    def test_loop_exits_on_completion_without_sleeping_forever(self, tmp_path):
        clear_result_cache()
        job_dir = tmp_path / "job"
        run_sharded(batch(), job_dir, shards=2, local_workers=0)
        frames: list[str] = []
        naps: list[float] = []
        code = run_top(
            str(job_dir),
            interval=2.0,
            emit=frames.append,
            sleep=naps.append,
            clock=lambda: 0.0,
        )
        # The job is already complete: one frame, zero sleeps.
        assert code == 0
        assert len(frames) == 1 and naps == []

    def test_iterations_bound_the_loop_on_a_live_job(self, tmp_path):
        frames: list[str] = []
        naps: list[float] = []
        code = run_top(
            str(tmp_path),  # empty dir: never "complete"
            interval=0.5,
            iterations=3,
            emit=frames.append,
            sleep=naps.append,
            clock=lambda: 0.0,
        )
        assert code == 0
        assert len(frames) == 3
        assert naps == [0.5, 0.5]
        # Refreshes after the first clear the screen.
        assert not frames[0].startswith("\x1b[2J")
        assert frames[1].startswith("\x1b[2J")


def _repro_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )


class TestCli:
    def test_top_once_on_a_job_dir(self, tmp_path):
        clear_result_cache()
        job_dir = tmp_path / "job"
        run_sharded(batch(), job_dir, shards=2, local_workers=0)
        proc = _repro_cli("top", str(job_dir), "--once")
        assert proc.returncode == 0, proc.stderr
        assert "job complete" in proc.stdout
        assert "shard-0000" in proc.stdout

    def test_shard_status_watch_uses_the_same_renderer(self, tmp_path):
        clear_result_cache()
        job_dir = tmp_path / "job"
        run_sharded(batch(), job_dir, shards=2, local_workers=0)
        proc = _repro_cli(
            "shard", "status", "--job-dir", str(job_dir), "--watch", "0.2"
        )
        # The job is complete, so the watch draws one frame and exits.
        assert proc.returncode == 0, proc.stderr
        assert "job complete" in proc.stdout
        assert "shard-0000" in proc.stdout
