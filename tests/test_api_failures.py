"""Failure domains at the executor level: capture, retry, backoff, timeout.

Pins the PR's executor contracts:

* ``on_error="capture"`` turns a poison spec into a deterministic
  :class:`~repro.results.FailedResult` — byte-identical between serial
  and process-pool execution, never stored in any cache;
* retries with seeded deterministic backoff recover flaky specs and
  leave **no marks** on the recovered result;
* ``timeout_s`` interrupts a hung attempt mid-flight;
* under the default ``on_error="raise"`` a batch failure propagates
  with its original type plus the failing spec's index/fingerprint.
"""

from __future__ import annotations

import pytest

from repro.api import (
    FailedResult,
    FailurePolicy,
    InstanceSpec,
    RunSpec,
    backoff_delay,
    resolve_policy,
    run,
    run_many,
)
from repro.api import failures as failures_module
from repro.api import runner as runner_module
from repro.api.failures import execution_deadline
from repro.api.runner import clear_result_cache
from repro.errors import (
    InjectedFault,
    ParameterError,
    SpecFormatError,
    SpecTimeoutError,
)
from repro.results import RunResult, canonical_json


def small_specs() -> list[RunSpec]:
    instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
    return [
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(instance=instance, algorithm="bko20"),
        RunSpec(instance=instance, algorithm="linial_greedy"),
    ]


@pytest.fixture(autouse=True)
def clean_state():
    clear_result_cache()
    assert runner_module._FAULT_HOOK is None
    yield
    runner_module._FAULT_HOOK = None
    clear_result_cache()


def poison(fingerprint: str):
    """A fault hook that fails every attempt of one fingerprint."""

    def hook(fp: str, attempt: int) -> None:
        if fp == fingerprint:
            raise InjectedFault(f"poisoned {fp[:12]}")

    return hook


class TestFailurePolicy:
    def test_validation(self):
        with pytest.raises(ParameterError):
            FailurePolicy(on_error="explode")
        with pytest.raises(ParameterError):
            FailurePolicy(retries=-1)
        with pytest.raises(ParameterError):
            FailurePolicy(backoff_s=-0.1)
        with pytest.raises(ParameterError):
            FailurePolicy(timeout_s=0)

    def test_resolve(self):
        policy = FailurePolicy(on_error="capture", retries=3)
        assert resolve_policy(policy) is policy
        assert resolve_policy("capture").captures
        assert not resolve_policy("raise").captures
        assert resolve_policy("raise").attempts == 1

    def test_round_trip(self):
        policy = FailurePolicy(
            on_error="capture", retries=2, backoff_s=0.5, timeout_s=3.0,
            backoff_seed=9,
        )
        assert FailurePolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecFormatError):
            FailurePolicy.from_dict({"on_error": "raise", "bogus": 1})


class TestBackoff:
    def test_deterministic_and_bounded(self):
        policy = FailurePolicy(retries=3, backoff_s=0.5, max_backoff_s=10.0)
        first = backoff_delay(policy, "ab" * 32, 1)
        assert first == backoff_delay(policy, "ab" * 32, 1)
        # Exponential base with jitter in [1, 2).
        assert 0.5 <= first < 1.0
        assert 1.0 <= backoff_delay(policy, "ab" * 32, 2) < 2.0

    def test_cap_and_zero(self):
        capped = FailurePolicy(retries=8, backoff_s=4.0, max_backoff_s=5.0)
        assert backoff_delay(capped, "cd" * 32, 6) == 5.0
        assert backoff_delay(FailurePolicy(), "cd" * 32, 1) == 0.0

    def test_seed_changes_schedule(self):
        a = FailurePolicy(backoff_s=1.0, backoff_seed=0)
        b = FailurePolicy(backoff_s=1.0, backoff_seed=1)
        assert backoff_delay(a, "ef" * 32, 1) != backoff_delay(b, "ef" * 32, 1)


class TestCapture:
    def test_poison_spec_becomes_failed_result(self):
        spec = small_specs()[0]
        runner_module._FAULT_HOOK = poison(spec.fingerprint())
        result = run(spec, cache=False, on_error="capture")
        assert isinstance(result, FailedResult)
        assert result.is_failure()
        assert result.error_type == "InjectedFault"
        assert result.fingerprint == spec.fingerprint()
        assert result.attempts == 1
        assert result.wall_clock_s is not None
        assert result.traceback_text

    def test_failures_never_cached(self):
        spec = small_specs()[0]
        runner_module._FAULT_HOOK = poison(spec.fingerprint())
        assert run(spec, on_error="capture").is_failure()
        runner_module._FAULT_HOOK = None
        # Memory cache must not have memoised the failure.
        assert not run(spec).is_failure()

    def test_failure_record_is_deterministic(self):
        spec = small_specs()[0]
        runner_module._FAULT_HOOK = poison(spec.fingerprint())
        first = run(spec, cache=False, on_error="capture")
        second = run(spec, cache=False, on_error="capture")
        # Observational extras stay out of the canonical record.
        assert "wall_clock" not in canonical_json(first.to_dict())
        assert canonical_json(first.to_dict()) == canonical_json(
            second.to_dict()
        )

    def test_round_trip_through_run_result(self):
        spec = small_specs()[0]
        runner_module._FAULT_HOOK = poison(spec.fingerprint())
        failed = run(spec, cache=False, on_error="capture")
        loaded = RunResult.from_dict(failed.to_dict())
        assert isinstance(loaded, FailedResult)
        assert canonical_json(loaded.to_dict()) == canonical_json(
            failed.to_dict()
        )

    def test_serial_equals_parallel_including_failures(self):
        specs = small_specs() + [small_specs()[0]]  # duplicate the poison
        runner_module._FAULT_HOOK = poison(specs[0].fingerprint())
        serial = run_many(specs, cache=False, on_error="capture")
        clear_result_cache()
        # Pool workers are forked on Linux, inheriting the hook.
        parallel = run_many(
            specs, parallel=2, cache=False, on_error="capture"
        )
        assert [canonical_json(r.to_dict()) for r in serial] == [
            canonical_json(r.to_dict()) for r in parallel
        ]
        assert serial[0].is_failure() and serial[3].is_failure()
        assert not serial[1].is_failure() and not serial[2].is_failure()


class TestRetry:
    def test_flaky_spec_recovers_without_marks(self):
        spec = small_specs()[0]
        baseline = run(spec, cache=False)

        def flaky_once(fp: str, attempt: int) -> None:
            if fp == spec.fingerprint() and attempt == 1:
                raise InjectedFault("doomed first attempt")

        runner_module._FAULT_HOOK = flaky_once
        recovered = run(
            spec,
            cache=False,
            on_error=FailurePolicy(on_error="capture", retries=1),
        )
        assert not recovered.is_failure()
        assert canonical_json(recovered.to_dict()) == canonical_json(
            baseline.to_dict()
        )

    def test_attempts_exhausted_then_captured(self):
        spec = small_specs()[0]
        runner_module._FAULT_HOOK = poison(spec.fingerprint())
        result = run(
            spec,
            cache=False,
            on_error=FailurePolicy(on_error="capture", retries=2),
        )
        assert result.is_failure()
        assert result.attempts == 3

    def test_backoff_schedule_is_slept(self, monkeypatch):
        spec = small_specs()[0]
        policy = FailurePolicy(
            on_error="capture", retries=2, backoff_s=0.5, backoff_seed=4
        )
        slept: list[float] = []
        monkeypatch.setattr(failures_module, "_sleep", slept.append)
        runner_module._FAULT_HOOK = poison(spec.fingerprint())
        run(spec, cache=False, on_error=policy)
        fingerprint = spec.fingerprint()
        assert slept == [
            backoff_delay(policy, fingerprint, 1),
            backoff_delay(policy, fingerprint, 2),
        ]


class TestTimeout:
    def test_hung_attempt_is_interrupted(self):
        import time as time_module

        spec = small_specs()[0]

        def hang(fp: str, attempt: int) -> None:
            if fp == spec.fingerprint():
                time_module.sleep(30.0)

        runner_module._FAULT_HOOK = hang
        started = time_module.monotonic()
        result = run(
            spec,
            cache=False,
            on_error=FailurePolicy(on_error="capture", timeout_s=0.2),
        )
        assert time_module.monotonic() - started < 5.0
        assert result.is_failure()
        assert result.error_type == "SpecTimeoutError"

    def test_deadline_direct(self):
        import time as time_module

        with execution_deadline(None):
            pass  # no-op without a budget
        with pytest.raises(SpecTimeoutError):
            with execution_deadline(0.05):
                time_module.sleep(10.0)

    def test_timeout_raises_under_raise_policy(self):
        import time as time_module

        spec = small_specs()[0]

        def hang(fp: str, attempt: int) -> None:
            time_module.sleep(30.0)

        runner_module._FAULT_HOOK = hang
        with pytest.raises(SpecTimeoutError):
            run(spec, cache=False, on_error=FailurePolicy(timeout_s=0.2))


class TestRaiseAnnotation:
    def test_serial_batch_names_the_failing_spec(self):
        specs = small_specs()
        runner_module._FAULT_HOOK = poison(specs[1].fingerprint())
        with pytest.raises(InjectedFault) as excinfo:
            run_many(specs, cache=False)
        assert excinfo.value.spec_index == 1
        assert excinfo.value.spec_fingerprint == specs[1].fingerprint()
        assert any(
            "spec 1" in note for note in excinfo.value.__notes__
        )

    def test_parallel_batch_names_the_failing_spec(self):
        specs = small_specs()
        runner_module._FAULT_HOOK = poison(specs[2].fingerprint())
        with pytest.raises(InjectedFault) as excinfo:
            run_many(specs, parallel=2, cache=False)
        assert excinfo.value.spec_index == 2
        assert excinfo.value.spec_fingerprint == specs[2].fingerprint()
