"""Tests for the Linial-style color reduction."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError
from repro.graphs.generators import random_regular
from repro.graphs.line_graph import line_graph_adjacency
from repro.graphs.properties import assign_unique_ids
from repro.model.edge_network import edge_identifier
from repro.primitives.linial import (
    linial_fixpoint_palette,
    linial_reduce,
    linial_step_parameters,
)
from repro.utils.gf import FieldPolynomial
from repro.utils.logstar import log_star


def _check_proper(adjacency, colors):
    for item, neighbors in adjacency.items():
        for other in neighbors:
            assert colors[item] != colors[other]


def _graph_adjacency(graph):
    return {node: sorted(graph.neighbors(node)) for node in graph.nodes()}


class TestStepParameters:
    def test_collision_bound_holds(self):
        params = linial_step_parameters(1000, 10)
        assert params.q > 10 * (params.k - 1)
        assert params.q ** params.k >= 1000

    def test_rejects_tiny_palette(self):
        with pytest.raises(InvalidInstanceError):
            linial_step_parameters(1, 5)

    @given(
        st.integers(min_value=2, max_value=10**7),
        st.integers(min_value=0, max_value=60),
    )
    def test_parameters_always_sound(self, palette, degree):
        params = linial_step_parameters(palette, degree)
        assert params.q > degree * max(0, params.k - 1)
        # every color must be encodable in k digits
        assert params.q ** params.k >= palette


class TestLinialReduce:
    def test_reduces_to_quadratic_palette(self):
        g = random_regular(4, 20, seed=2)
        adjacency = _graph_adjacency(g)
        ids = assign_unique_ids(g, seed=3)
        result = linial_reduce(adjacency, ids)
        _check_proper(adjacency, result.colors)
        assert result.palette_size <= 16 * (4 + 2) ** 2

    def test_round_count_logstar_scale(self):
        g = nx.cycle_graph(64)
        adjacency = _graph_adjacency(g)
        ids = {node: 10**9 + node * 104729 for node in g.nodes()}
        result = linial_reduce(adjacency, ids)
        _check_proper(adjacency, result.colors)
        assert result.rounds <= log_star(10**10) + 4

    def test_on_line_graph_gives_edge_coloring(self):
        g = random_regular(5, 12, seed=4)
        adjacency = line_graph_adjacency(g)
        node_ids = assign_unique_ids(g)
        max_id = max(node_ids.values())
        edge_ids = {e: edge_identifier(e, node_ids, max_id) for e in adjacency}
        result = linial_reduce(adjacency, edge_ids)
        _check_proper(adjacency, result.colors)
        dbar = max(len(v) for v in adjacency.values())
        assert result.palette_size <= 16 * (dbar + 2) ** 2

    def test_empty_adjacency(self):
        result = linial_reduce({}, {})
        assert result.colors == {} and result.rounds == 0

    def test_isolated_items_get_single_color(self):
        result = linial_reduce({0: [], 1: []}, {0: 5, 1: 9})
        assert result.palette_size == 1
        assert result.rounds == 0

    def test_stop_at_early_exit(self):
        g = nx.cycle_graph(30)
        adjacency = _graph_adjacency(g)
        ids = assign_unique_ids(g, seed=1)
        full = linial_reduce(adjacency, ids)
        early = linial_reduce(adjacency, ids, stop_at=10**6)
        assert early.rounds <= full.rounds

    def test_rejects_improper_input(self):
        with pytest.raises(InvalidInstanceError):
            linial_reduce({0: [1], 1: [0]}, {0: 3, 1: 3})

    def test_rejects_missing_colors(self):
        with pytest.raises(InvalidInstanceError):
            linial_reduce({0: [1], 1: [0]}, {0: 3})

    def test_matches_agreement_points_semantics(self):
        """The vectorised round must forbid exactly the agreement
        points of the polynomial encoding (cross-check vs the slow
        textbook form)."""
        g = nx.path_graph(6)
        adjacency = _graph_adjacency(g)
        ids = {node: [300, 1100, 700, 1900, 200, 1500][node] for node in g.nodes()}
        result = linial_reduce(adjacency, ids)
        assert result.step_parameters, "instance too small to exercise a step"
        params = result.step_parameters[0]
        q, k = params.q, params.k
        for node, neighbors in adjacency.items():
            own = FieldPolynomial.from_color(ids[node], q, k)
            forbidden = set()
            for other in neighbors:
                forbidden.update(
                    own.agreement_points(
                        FieldPolynomial.from_color(ids[other], q, k)
                    )
                )
            # first round's chosen x must avoid all agreement points
            first_round_color = _first_round_color(ids, adjacency, node, params)
            x = first_round_color // q
            assert x not in forbidden


def _first_round_color(ids, adjacency, node, params):
    from repro.primitives.linial import _one_round

    return _one_round(adjacency, ids, params)[node]


class TestFixpointPalette:
    def test_known_values(self):
        assert linial_fixpoint_palette(0) == 1
        assert linial_fixpoint_palette(1) == 4  # prime 2 > 1
        assert linial_fixpoint_palette(4) == 25
        assert linial_fixpoint_palette(6) == 49

    @given(st.integers(min_value=1, max_value=500))
    def test_quadratic_scale(self, degree):
        assert degree**2 < linial_fixpoint_palette(degree) <= 16 * (degree + 2) ** 2
