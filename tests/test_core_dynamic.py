"""Tests for incremental coloring extension (the paper's motivating
use of list coloring)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError
from repro.coloring.palette import Palette
from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.core.dynamic import extend_coloring, insert_edges
from repro.core.solver import solve_edge_coloring
from repro.graphs.edges import edge_key, edge_set
from repro.graphs.generators import complete_bipartite, random_regular
from repro.graphs.properties import max_degree


class TestExtendColoring:
    def test_preserves_existing_colors(self):
        graph = random_regular(4, 14, seed=2)
        base = solve_edge_coloring(graph, seed=1).coloring
        # forget half the colors, extend back
        edges = edge_set(graph)
        partial = {e: base[e] for e in edges[: len(edges) // 2]}
        result = extend_coloring(graph, partial, seed=3)
        check_proper_edge_coloring(graph, result.coloring)
        for edge, color in partial.items():
            assert result.coloring[edge] == color

    def test_empty_partial_colors_everything(self):
        graph = nx.cycle_graph(6)
        result = extend_coloring(graph, {}, seed=1)
        check_proper_edge_coloring(graph, result.coloring)

    def test_complete_partial_is_noop(self):
        graph = nx.path_graph(4)
        base = solve_edge_coloring(graph).coloring
        result = extend_coloring(graph, base)
        assert result.coloring == dict(base)
        assert result.rounds == 0

    def test_rejects_improper_existing(self):
        graph = nx.path_graph(3)
        with pytest.raises(Exception):
            extend_coloring(graph, {(0, 1): 1, (1, 2): 1})

    def test_rejects_nonedge(self):
        graph = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            extend_coloring(graph, {(0, 2): 1})

    def test_rejects_colors_outside_palette(self):
        graph = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            extend_coloring(graph, {(0, 1): 99}, palette=Palette.of_size(3))

    def test_noncanonical_edge_keys_accepted(self):
        graph = nx.path_graph(3)
        result = extend_coloring(graph, {(1, 0): 1})
        assert result.coloring[(0, 1)] == 1


class TestInsertEdges:
    def test_insertion_workflow(self):
        graph = complete_bipartite(4, 4)
        base = solve_edge_coloring(graph, seed=1).coloring
        new_links = [(0, 1), (2, 3)]  # inside each side: new edges
        updated, result = insert_edges(graph, base, new_links, seed=2)
        assert updated.number_of_edges() == graph.number_of_edges() + 2
        check_proper_edge_coloring(updated, result.coloring)
        for edge, color in base.items():
            assert result.coloring[edge] == color
        check_palette_bound(
            result.coloring, max(1, 2 * max_degree(updated) - 1)
        )

    def test_rejects_self_loop_insertion(self):
        graph = nx.path_graph(3)
        with pytest.raises(InvalidInstanceError):
            insert_edges(graph, {}, [(1, 1)])

    @settings(deadline=None, max_examples=12)
    @given(st.integers(min_value=0, max_value=10**4))
    def test_random_insertions(self, seed):
        import random

        rng = random.Random(seed)
        graph = random_regular(4, 12, seed=seed % 37)
        base = solve_edge_coloring(graph, seed=1).coloring
        nodes = sorted(graph.nodes())
        candidates = [
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not graph.has_edge(u, v)
        ]
        rng.shuffle(candidates)
        new_links = candidates[:3]
        updated, result = insert_edges(graph, base, new_links, seed=2)
        check_proper_edge_coloring(updated, result.coloring)
        for edge, color in base.items():
            assert result.coloring[edge_key(*edge)] == color
